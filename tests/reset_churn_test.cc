// Memo reuse churn: thousands of optimize / ResetForReuse cycles on one
// Optimizer must (a) keep producing the exact same plans and (b) reach a
// flat arena footprint — the memory-robustness contract the serving layer
// leans on (src/serve/session.h).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "relational/sql.h"
#include "search/optimizer.h"
#include "search/search_config.h"
#include "search/plan.h"

namespace volcano {
namespace {

TEST(ResetChurn, ThousandsOfCyclesPlateauAndStayDeterministic) {
  rel::Catalog catalog;
  VOLCANO_CHECK(
      catalog.AddRelation("emp", 2000, 100, 3, {2000, 50, 10}).ok());
  VOLCANO_CHECK(catalog.AddRelation("dept", 50, 100, 2, {50, 5}).ok());
  VOLCANO_CHECK(catalog.AddRelation("loc", 10, 100, 2, {10, 10}).ok());
  rel::RelModel model(catalog);

  const char* const kQueries[] = {
      "SELECT * FROM emp WHERE emp.a1 < 100",
      "SELECT * FROM emp, dept WHERE emp.a2 = dept.a0 ORDER BY emp.a1",
      "SELECT * FROM emp, dept, loc "
      "WHERE emp.a2 = dept.a0 AND dept.a1 = loc.a0",
      "SELECT emp.a1, count(*) FROM emp GROUP BY emp.a1",
  };
  std::vector<rel::ParsedQuery> parsed;
  for (const char* sql : kQueries) {
    StatusOr<rel::ParsedQuery> q =
        rel::ParseSql(sql, model, catalog.symbols());
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    parsed.push_back(std::move(*q));
  }

  Optimizer optimizer(model);
  std::vector<std::string> expected;
  std::vector<std::string> expected_cost;
  // The first pass over all queries establishes the arena high-water
  // (Arena::Reset rewinds to the first block, so the footprint regrows
  // deterministically per query); no amount of further churn may raise it.
  size_t high_water = 0;
  for (const rel::ParsedQuery& q : parsed) {
    optimizer.ResetForReuse();
    StatusOr<PlanPtr> plan = optimizer.Optimize(*q.expr, q.required);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    expected.push_back(PlanToLine(**plan, model.registry()));
    expected_cost.push_back(model.cost_model().ToString((*plan)->cost()));
    high_water = std::max(high_water, optimizer.memo().arena_bytes());
  }
  ASSERT_GT(high_water, 0u);

  constexpr int kCycles = 3000;
  for (int i = 0; i < kCycles; ++i) {
    size_t qi = i % parsed.size();
    optimizer.ResetForReuse();
    StatusOr<PlanPtr> plan =
        optimizer.Optimize(*parsed[qi].expr, parsed[qi].required);
    ASSERT_TRUE(plan.ok()) << "cycle " << i << ": "
                           << plan.status().ToString();
    ASSERT_EQ(PlanToLine(**plan, model.registry()), expected[qi])
        << "cycle " << i;
    ASSERT_EQ(model.cost_model().ToString((*plan)->cost()),
              expected_cost[qi])
        << "cycle " << i;
    ASSERT_LE(optimizer.memo().arena_bytes(), high_water) << "cycle " << i;
  }
  // Per-query search stats are reset each cycle, not accumulated.
  EXPECT_GT(optimizer.stats().goals_started, 0u);
}

// Budgeted and unbudgeted cycles interleave: a degraded request must not
// perturb the next full optimization (the serving loop mixes both).
TEST(ResetChurn, DegradedCyclesDoNotPerturbFullOnes) {
  rel::Catalog catalog;
  VOLCANO_CHECK(
      catalog.AddRelation("emp", 2000, 100, 3, {2000, 50, 10}).ok());
  VOLCANO_CHECK(catalog.AddRelation("dept", 50, 100, 2, {50, 5}).ok());
  rel::RelModel model(catalog);

  StatusOr<rel::ParsedQuery> q = rel::ParseSql(
      "SELECT * FROM emp, dept WHERE emp.a2 = dept.a0 ORDER BY emp.a1",
      model, catalog.symbols());
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  SearchOptions options;
  options.degradation = SearchOptions::Degradation::kAnytime;
  Optimizer optimizer(model, SearchConfig::FromOptions(options).value());

  optimizer.ResetForReuse();
  StatusOr<PlanPtr> baseline = optimizer.Optimize(*q->expr, q->required);
  ASSERT_TRUE(baseline.ok());
  std::string expected = PlanToLine(**baseline, model.registry());

  OptimizationBudget full;        // unlimited
  OptimizationBudget starved;
  starved.max_find_best_plan_calls = 1;
  for (int i = 0; i < 500; ++i) {
    optimizer.ResetForReuse();
    optimizer.set_budget(starved);
    StatusOr<PlanPtr> degraded = optimizer.Optimize(*q->expr, q->required);
    ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
    EXPECT_NE(optimizer.outcome().source, PlanSource::kExhaustive);

    optimizer.ResetForReuse();
    optimizer.set_budget(full);
    StatusOr<PlanPtr> plan = optimizer.Optimize(*q->expr, q->required);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_EQ(optimizer.outcome().source, PlanSource::kExhaustive);
    ASSERT_EQ(PlanToLine(**plan, model.registry()), expected) << "cycle "
                                                              << i;
  }
}

// Successive Optimize() calls on one Optimizer WITHOUT ResetForReuse must
// each start a fresh per-call search. The load-bearing detail is the
// per-call reset of the fired-transformation counter (the explore cap's
// denominator): under an explore_limit sized just above the first query's
// firing count, a counter leaked from call one would trip the cap within the
// second query's first few transformations and mark an exhaustive result
// approximate. The second query must reach a part of the plan space the
// first never explored, or the shared memo answers it without firing
// anything and the test has no teeth.
TEST(ResetChurn, SuccessiveOptimizeCallsStartFreshWithoutReset) {
  rel::Catalog catalog;
  VOLCANO_CHECK(
      catalog.AddRelation("emp", 2000, 100, 3, {2000, 50, 10}).ok());
  VOLCANO_CHECK(catalog.AddRelation("dept", 50, 100, 2, {50, 5}).ok());
  VOLCANO_CHECK(catalog.AddRelation("loc", 10, 100, 2, {10, 10}).ok());
  rel::RelModel model(catalog);
  // q1's closure is strictly larger than q2's, and q2's join (emp.a1 = loc
  // key) appears nowhere in q1's closure, so call two must explore fresh.
  StatusOr<rel::ParsedQuery> q1 = rel::ParseSql(
      "SELECT * FROM emp, dept, loc "
      "WHERE emp.a2 = dept.a0 AND dept.a1 = loc.a0 ORDER BY emp.a1",
      model, catalog.symbols());
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  StatusOr<rel::ParsedQuery> q2 = rel::ParseSql(
      "SELECT * FROM emp, loc WHERE emp.a1 = loc.a0",
      model, catalog.symbols());
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();

  // Probe each query's uncapped firing count and reference plan.
  uint64_t fired1 = 0;
  uint64_t fired2 = 0;
  std::string expected1;
  std::string expected2;
  {
    Optimizer probe(model);
    StatusOr<PlanPtr> plan = probe.Optimize(*q1->expr, q1->required);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    fired1 = probe.stats().transformations_applied;
    expected1 = PlanToLine(**plan, model.registry());
  }
  {
    Optimizer probe(model);
    StatusOr<PlanPtr> plan = probe.Optimize(*q2->expr, q2->required);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    fired2 = probe.stats().transformations_applied;
    expected2 = PlanToLine(**plan, model.registry());
  }
  ASSERT_GT(fired2, 0u);
  ASSERT_LT(fired2, fired1);  // the cap below cannot trip a fresh call two

  // Cap one application above call one's count. With the per-call reset,
  // neither call comes near the cap; with a leaked counter, call two would
  // trip it after a single transformation.
  SearchOptions options;
  options.explore_limit = fired1 + 1;
  Optimizer optimizer(model, SearchConfig::FromOptions(options).value());

  StatusOr<PlanPtr> plan1 = optimizer.Optimize(*q1->expr, q1->required);
  ASSERT_TRUE(plan1.ok()) << plan1.status().ToString();
  EXPECT_EQ(optimizer.outcome().source, PlanSource::kExhaustive);
  EXPECT_FALSE(optimizer.outcome().approximate);
  EXPECT_EQ(PlanToLine(**plan1, model.registry()), expected1);
  EXPECT_EQ(optimizer.stats().transformations_applied, fired1);

  StatusOr<PlanPtr> plan2 = optimizer.Optimize(*q2->expr, q2->required);
  ASSERT_TRUE(plan2.ok()) << plan2.status().ToString();
  EXPECT_EQ(optimizer.outcome().source, PlanSource::kExhaustive);
  EXPECT_FALSE(optimizer.outcome().approximate);
  EXPECT_EQ(PlanToLine(**plan2, model.registry()), expected2);
  // Call two really explored (the cumulative counter moved)...
  EXPECT_GT(optimizer.stats().transformations_applied, fired1);
  // ...and the whole sequence stayed under what a leaked counter would
  // have turned into a trip.
  EXPECT_GT(optimizer.stats().transformations_applied,
            options.explore_limit);
}

}  // namespace
}  // namespace volcano
