// 10k-request fault-injected serving soak.
//
// The robustness acceptance test for the serving loop: a long mixed request
// stream — valid SQL across the workload grid, malformed lines, unknown
// tables, admin traffic — under a serve-layer fault injector that randomly
// garbles requests, trips budgets mid-request, and bumps the catalog version
// to attempt cache poisoning. Asserts the serving contract:
//
//   * every request is answered (no hang, no crash, no dropped response);
//   * the response-category accounting is exact (ok + errors + shed ==
//     requests) and matches an independent client-side count;
//   * no stale plan is ever served across a catalog bump (response versions
//     are monotonic per worker);
//   * the per-session memo arena plateaus: after warm-up its footprint never
//     grows, no matter how much traffic follows.
//
// Runs single-worker for bit-reproducible fault sequences; the concurrency
// side is covered by serve_test.cc and the TSan CI job.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "relational/catalog.h"
#include "serve/server.h"
#include "support/fault.h"

namespace volcano::serve {
namespace {

void FillCatalog(rel::Catalog* catalog) {
  VOLCANO_CHECK(
      catalog->AddRelation("emp", 2000, 100, 3, {2000, 50, 10}).ok());
  VOLCANO_CHECK(catalog->AddRelation("dept", 50, 100, 2, {50, 5}).ok());
  VOLCANO_CHECK(catalog->AddRelation("loc", 10, 100, 2, {10, 10}).ok());
}

const char* const kValid[] = {
    "SELECT * FROM emp",
    "SELECT * FROM emp WHERE emp.a1 < 100",
    "SELECT * FROM emp WHERE emp.a2 = 7 ORDER BY emp.a1",
    "SELECT emp.a1 FROM emp ORDER BY emp.a1",
    "SELECT * FROM emp, dept WHERE emp.a2 = dept.a0",
    "SELECT * FROM emp, dept WHERE emp.a2 = dept.a0 ORDER BY emp.a1",
    "SELECT * FROM emp, dept, loc "
    "WHERE emp.a2 = dept.a0 AND dept.a1 = loc.a0",
    "SELECT * FROM emp, dept, loc "
    "WHERE emp.a2 = dept.a0 AND dept.a1 = loc.a0 ORDER BY loc.a1",
    "SELECT emp.a1, count(*) FROM emp GROUP BY emp.a1",
    "SELECT dept.a1, count(*) FROM dept GROUP BY dept.a1 ORDER BY dept.a1",
};

const char* const kInvalid[] = {
    "SELECT * FROM nowhere",
    "SELECT * FROM emp WHERE emp.bogus = 1",
    "SELEC * FORM emp",
    "complete garbage ~~ not sql at all",
    "!unknown-admin",
};

TEST(ServeSoak, TenThousandFaultInjectedRequests) {
  rel::Catalog catalog;
  FillCatalog(&catalog);

  FaultInjector fault({.seed = 42,
                       .request_malform_prob = 0.05,
                       .request_budget_prob = 0.05,
                       .catalog_bump_prob = 0.002});
  ServerOptions options;
  options.workers = 1;
  options.max_inflight = 16;
  options.cache_capacity = 256;
  options.fault = &fault;
  Server server(&catalog, options);

  constexpr int kRequests = 10000;
  constexpr int kWarmup = 2000;
  uint64_t client_ok = 0, client_err = 0;
  uint64_t last_version = 0;
  // Arena high-water during / after warm-up. The worker publishes its arena
  // footprint after each request, and HandleLine is synchronous, so the
  // snapshot is exact here.
  size_t warmup_high_water = 0;
  size_t steady_high_water = 0;

  for (int i = 0; i < kRequests; ++i) {
    std::string line;
    int bucket = i % 100;
    if (bucket < 88) {
      line = kValid[i % std::size(kValid)];
    } else if (bucket < 96) {
      line = kInvalid[i % std::size(kInvalid)];
    } else if (bucket < 98) {
      line = "!stats";
    } else {
      line = "!distinct emp.a1 " + std::to_string(10 + i % 90);
    }
    std::string resp = server.HandleLine(std::move(line));
    ASSERT_FALSE(resp.empty()) << "request " << i << " got no response";
    if (resp.find("\"ok\": true") != std::string::npos) {
      ++client_ok;
    } else {
      ASSERT_NE(resp.find("\"ok\": false"), std::string::npos)
          << "request " << i << ": malformed response " << resp;
      ++client_err;
    }
    // Version monotonicity: a served plan must never be older than one we
    // already saw (a regression here means a poisoned cache hit).
    size_t vpos = resp.find("\"catalog_version\": ");
    if (vpos != std::string::npos) {
      uint64_t v = std::strtoull(
          resp.c_str() + vpos + std::strlen("\"catalog_version\": "), nullptr,
          10);
      ASSERT_GE(v, last_version) << "request " << i << ": " << resp;
      last_version = v;
    }
    size_t arena = server.SessionArenaBytes()[0];
    (i < kWarmup ? warmup_high_water : steady_high_water) =
        std::max(i < kWarmup ? warmup_high_water : steady_high_water, arena);
  }
  server.Drain();

  // Every request answered, accounting exact.
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests, uint64_t(kRequests));
  EXPECT_EQ(stats.ok + stats.errors + stats.shed, stats.requests);
  EXPECT_EQ(stats.ok, client_ok);
  EXPECT_EQ(stats.errors + stats.shed, client_err);
  EXPECT_EQ(stats.shed, 0u);  // serial client can never exceed the cap

  // The faults actually fired.
  const FaultInjector::Counters& fc = fault.counters();
  EXPECT_EQ(fc.request_sites, uint64_t(kRequests));
  EXPECT_GT(fc.requests_malformed, 0u);
  EXPECT_GT(fc.request_budgets_shrunk, 0u);
  EXPECT_GT(fc.catalog_bumps, 0u);
  EXPECT_GT(stats.degraded, 0u);       // shrunk budgets degraded, not erred
  EXPECT_GT(stats.cache_hits, 0u);     // the grid repeats: cache must work
  EXPECT_GT(stats.cache_invalidations, 0u);
  EXPECT_GT(stats.model_rebuilds, 0u);

  // Memory plateau: the arena high-water after warm-up never exceeds the
  // high-water reached during warm-up — 8000 further requests add no
  // footprint. (Catalog bumps rebuild sessions with fresh arenas, so the
  // steady-state watermark may even be lower.)
  EXPECT_GT(warmup_high_water, 0u);
  EXPECT_LE(steady_high_water, warmup_high_water);
}

}  // namespace
}  // namespace volcano::serve
