// Unit tests for the execution engine: each iterator in isolation, data
// generation, and schema utilities.

#include <gtest/gtest.h>

#include <algorithm>

#include "exec/datagen.h"
#include "exec/iterators.h"
#include "exec/plan_exec.h"
#include "relational/catalog.h"

namespace volcano::exec {
namespace {

SymbolTable g_symbols;

Symbol Sym(const char* s) { return g_symbols.Intern(s); }

Table MakeTable(std::vector<Symbol> attrs, std::vector<Row> rows) {
  Table t;
  t.schema = Schema(std::move(attrs));
  t.rows = std::move(rows);
  return t;
}

TEST(Schema, IndexOfAndConcat) {
  Schema a({Sym("x"), Sym("y")});
  Schema b({Sym("z")});
  EXPECT_EQ(a.IndexOf(Sym("x")), 0);
  EXPECT_EQ(a.IndexOf(Sym("y")), 1);
  EXPECT_EQ(a.IndexOf(Sym("z")), -1);
  Schema c = Schema::Concat(a, b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.IndexOf(Sym("z")), 2);
}

TEST(ScanIterator, ProducesAllRows) {
  Table t = MakeTable({Sym("a")}, {{1}, {2}, {3}});
  ScanIterator scan(t);
  std::vector<Row> out = Drain(scan);
  EXPECT_EQ(out, (std::vector<Row>{{1}, {2}, {3}}));
}

TEST(ScanIterator, EmptyTable) {
  Table t = MakeTable({Sym("a")}, {});
  ScanIterator scan(t);
  EXPECT_TRUE(Drain(scan).empty());
}

TEST(FilterIterator, AppliesPredicate) {
  Table t = MakeTable({Sym("f1")}, {{1}, {5}, {3}, {9}});
  rel::SelectArg pred(g_symbols, Sym("f1"), rel::CmpOp::kLess, 5, 0.5);
  FilterIterator f(std::make_unique<ScanIterator>(t), pred);
  EXPECT_EQ(Drain(f), (std::vector<Row>{{1}, {3}}));
}

TEST(FilterIterator, AllCmpOps) {
  Table t = MakeTable({Sym("f2")}, {{1}, {2}, {3}});
  auto run = [&](rel::CmpOp op) {
    rel::SelectArg pred(g_symbols, Sym("f2"), op, 2, 0.5);
    FilterIterator f(std::make_unique<ScanIterator>(t), pred);
    return Drain(f).size();
  };
  EXPECT_EQ(run(rel::CmpOp::kLess), 1u);
  EXPECT_EQ(run(rel::CmpOp::kLessEq), 2u);
  EXPECT_EQ(run(rel::CmpOp::kEq), 1u);
  EXPECT_EQ(run(rel::CmpOp::kGreaterEq), 2u);
  EXPECT_EQ(run(rel::CmpOp::kGreater), 1u);
}

TEST(SortIterator, SortsSingleColumn) {
  Table t = MakeTable({Sym("s1")}, {{3}, {1}, {2}});
  SortIterator s(std::make_unique<ScanIterator>(t), {Sym("s1")});
  EXPECT_EQ(Drain(s), (std::vector<Row>{{1}, {2}, {3}}));
}

TEST(SortIterator, SortsMajorMinor) {
  Table t = MakeTable({Sym("s2"), Sym("s3")}, {{2, 1}, {1, 2}, {1, 1}, {2, 0}});
  SortIterator s(std::make_unique<ScanIterator>(t), {Sym("s2"), Sym("s3")});
  EXPECT_EQ(Drain(s), (std::vector<Row>{{1, 1}, {1, 2}, {2, 0}, {2, 1}}));
}

TEST(SortIterator, StableUnderEqualKeys) {
  Table t = MakeTable({Sym("s4"), Sym("s5")}, {{1, 9}, {1, 7}, {0, 5}});
  SortIterator s(std::make_unique<ScanIterator>(t), {Sym("s4")});
  std::vector<Row> out = Drain(s);
  EXPECT_EQ(out[0], (Row{0, 5}));
  // Equal keys may appear in either order; verify the key column only.
  EXPECT_EQ(out[1][0], 1);
  EXPECT_EQ(out[2][0], 1);
}

std::vector<Row> JoinReference(const Table& l, const Table& r, int lc,
                               int rc) {
  std::vector<Row> out;
  for (const Row& a : l.rows) {
    for (const Row& b : r.rows) {
      if (a[lc] == b[rc]) {
        Row row = a;
        row.insert(row.end(), b.begin(), b.end());
        out.push_back(row);
      }
    }
  }
  return out;
}

TEST(MergeJoinIterator, MatchesNestedLoopReference) {
  Table l = MakeTable({Sym("mj_l")}, {{1}, {2}, {2}, {4}, {7}});
  Table r = MakeTable({Sym("mj_r")}, {{2}, {2}, {3}, {4}, {4}, {8}});
  MergeJoinIterator mj(std::make_unique<ScanIterator>(l),
                       std::make_unique<ScanIterator>(r), Sym("mj_l"),
                       Sym("mj_r"));
  EXPECT_TRUE(SameMultiset(Drain(mj), JoinReference(l, r, 0, 0)));
}

TEST(MergeJoinIterator, DuplicateHeavyInputs) {
  Table l = MakeTable({Sym("mj2_l")}, {{1}, {1}, {1}, {2}});
  Table r = MakeTable({Sym("mj2_r")}, {{1}, {1}, {2}, {2}});
  MergeJoinIterator mj(std::make_unique<ScanIterator>(l),
                       std::make_unique<ScanIterator>(r), Sym("mj2_l"),
                       Sym("mj2_r"));
  EXPECT_EQ(Drain(mj).size(), 3u * 2u + 1u * 2u);
}

TEST(MergeJoinIterator, NoMatches) {
  Table l = MakeTable({Sym("mj3_l")}, {{1}, {3}, {5}});
  Table r = MakeTable({Sym("mj3_r")}, {{2}, {4}, {6}});
  MergeJoinIterator mj(std::make_unique<ScanIterator>(l),
                       std::make_unique<ScanIterator>(r), Sym("mj3_l"),
                       Sym("mj3_r"));
  EXPECT_TRUE(Drain(mj).empty());
}

TEST(MergeJoinIterator, EmptyInputs) {
  Table l = MakeTable({Sym("mj4_l")}, {});
  Table r = MakeTable({Sym("mj4_r")}, {{1}});
  MergeJoinIterator mj(std::make_unique<ScanIterator>(l),
                       std::make_unique<ScanIterator>(r), Sym("mj4_l"),
                       Sym("mj4_r"));
  EXPECT_TRUE(Drain(mj).empty());
}

TEST(HashJoinIterator, MatchesNestedLoopReference) {
  Table l = MakeTable({Sym("hj_l"), Sym("hj_lv")},
                      {{1, 10}, {2, 20}, {2, 21}, {5, 50}});
  Table r = MakeTable({Sym("hj_r")}, {{2}, {5}, {5}, {9}});
  HashJoinIterator hj(std::make_unique<ScanIterator>(l),
                      std::make_unique<ScanIterator>(r), Sym("hj_l"),
                      Sym("hj_r"));
  EXPECT_TRUE(SameMultiset(Drain(hj), JoinReference(l, r, 0, 0)));
}

TEST(HashJoinIterator, EmptyBuildSide) {
  Table l = MakeTable({Sym("hj2_l")}, {});
  Table r = MakeTable({Sym("hj2_r")}, {{1}, {2}});
  HashJoinIterator hj(std::make_unique<ScanIterator>(l),
                      std::make_unique<ScanIterator>(r), Sym("hj2_l"),
                      Sym("hj2_r"));
  EXPECT_TRUE(Drain(hj).empty());
}

TEST(ProjectIterator, SelectsAndReordersColumns) {
  Table t = MakeTable({Sym("p1"), Sym("p2"), Sym("p3")}, {{1, 2, 3}});
  ProjectIterator p(std::make_unique<ScanIterator>(t),
                    {Sym("p3"), Sym("p1")});
  EXPECT_EQ(Drain(p), (std::vector<Row>{{3, 1}}));
  EXPECT_EQ(p.schema().IndexOf(Sym("p3")), 0);
}

TEST(MergeIntersectIterator, IntersectsSortedInputs) {
  Table l = MakeTable({Sym("mi_l")}, {{1}, {2}, {2}, {3}});
  Table r = MakeTable({Sym("mi_r")}, {{2}, {3}, {3}, {4}});
  MergeIntersectIterator mi(std::make_unique<ScanIterator>(l),
                            std::make_unique<ScanIterator>(r), {Sym("mi_l")},
                            {Sym("mi_r")});
  EXPECT_EQ(Drain(mi), (std::vector<Row>{{2}, {3}}));  // set semantics
}

TEST(MergeIntersectIterator, RespectsAlternativeColumnOrder) {
  // Inputs sorted by their *second* column; comparison must follow that
  // order, not the schema order.
  Table l = MakeTable({Sym("mi2_a"), Sym("mi2_b")}, {{9, 1}, {5, 2}, {1, 3}});
  Table r = MakeTable({Sym("mi2_c"), Sym("mi2_d")}, {{5, 2}, {9, 3}});
  MergeIntersectIterator mi(
      std::make_unique<ScanIterator>(l), std::make_unique<ScanIterator>(r),
      {Sym("mi2_b"), Sym("mi2_a")}, {Sym("mi2_d"), Sym("mi2_c")});
  EXPECT_EQ(Drain(mi), (std::vector<Row>{{5, 2}}));
}

TEST(HashIntersectIterator, SetSemantics) {
  Table l = MakeTable({Sym("hi_l")}, {{3}, {1}, {2}, {2}});
  Table r = MakeTable({Sym("hi_r")}, {{2}, {2}, {3}, {5}});
  HashIntersectIterator hi(std::make_unique<ScanIterator>(l),
                           std::make_unique<ScanIterator>(r));
  EXPECT_TRUE(SameMultiset(Drain(hi), {{2}, {3}}));
}

TEST(Datagen, HonoursCardinalityAndDomain) {
  rel::Catalog catalog;
  StatusOr<Symbol> r =
      catalog.AddRelation("DG1", 500, 100, 2, {500, 10});
  ASSERT_TRUE(r.ok());
  Table t = GenerateTable(*catalog.FindRelation(r.value()), 7);
  EXPECT_EQ(t.rows.size(), 500u);
  for (const Row& row : t.rows) {
    EXPECT_GE(row[1], 0);
    EXPECT_LT(row[1], 10);
  }
}

TEST(Datagen, SortedRelationIsSorted) {
  rel::Catalog catalog;
  StatusOr<Symbol> r = catalog.AddRelation("DG2", 200, 100, 2);
  ASSERT_TRUE(r.ok());
  Symbol key = catalog.symbols().Lookup("DG2.a0");
  ASSERT_TRUE(catalog.SetSortedOn(r.value(), {key}).ok());
  Table t = GenerateTable(*catalog.FindRelation(r.value()), 13);
  EXPECT_TRUE(IsSortedBy(t.rows, {0}));
}

TEST(Datagen, Deterministic) {
  rel::Catalog catalog;
  StatusOr<Symbol> r = catalog.AddRelation("DG3", 100, 100, 3);
  ASSERT_TRUE(r.ok());
  Table a = GenerateTable(*catalog.FindRelation(r.value()), 99);
  Table b = GenerateTable(*catalog.FindRelation(r.value()), 99);
  EXPECT_EQ(a.rows, b.rows);
}

TEST(Helpers, SameMultisetDetectsDifference) {
  EXPECT_TRUE(SameMultiset({{1}, {2}}, {{2}, {1}}));
  EXPECT_FALSE(SameMultiset({{1}, {2}}, {{2}, {2}}));
  EXPECT_FALSE(SameMultiset({{1}}, {{1}, {1}}));
}

TEST(Helpers, IsSortedBy) {
  EXPECT_TRUE(IsSortedBy({{1, 9}, {2, 0}, {2, 1}}, {0}));
  EXPECT_FALSE(IsSortedBy({{2, 0}, {1, 9}}, {0}));
  EXPECT_TRUE(IsSortedBy({}, {0}));
}

}  // namespace
}  // namespace volcano::exec
