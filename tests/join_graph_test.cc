// Query-graph extraction and greedy join ordering (DESIGN.md §12).
//
// The topology classifier must read the shape implied by the equi-join
// predicates — including the edges implied by attribute-equivalence
// transitivity — and greedy ordering must refuse graphs it cannot reorder
// faithfully (invalid or disconnected) rather than drop predicates.

#include <gtest/gtest.h>

#include <functional>

#include "relational/join_graph.h"
#include "relational/query_gen.h"
#include "search/optimizer.h"

namespace volcano::rel {
namespace {

/// Hand-built catalog: relations with three attributes each (attribute 0
/// key-like, the others coarser), so tests can wire predicates to specific
/// attributes and topologies.
struct Fixture {
  Catalog catalog;
  std::unique_ptr<RelModel> model;
  std::vector<Symbol> rels;
  std::vector<std::vector<Symbol>> attrs;

  void Add(const std::string& name, double card) {
    StatusOr<Symbol> rel =
        catalog.AddRelation(name, card, 100.0, 3, {card, card / 10.0, 50.0});
    ASSERT_TRUE(rel.ok()) << rel.status().ToString();
    rels.push_back(rel.value());
    attrs.emplace_back();
    for (const auto& a : catalog.FindRelation(rel.value())->attributes) {
      attrs.back().push_back(a.name);
    }
  }

  void Finish() { model = std::make_unique<RelModel>(catalog); }

  ExprPtr Get(int i) const { return model->Get(rels[i]); }
};

int CountJoins(const RelModel& model, const Expr& e) {
  int n = e.op() == model.ops().join ? 1 : 0;
  for (const auto& in : e.inputs()) n += CountJoins(model, *in);
  return n;
}

TEST(JoinGraph, TwoWayJoinIsChain) {
  Fixture f;
  f.Add("A", 1000);
  f.Add("B", 2000);
  f.Finish();
  ExprPtr q = f.model->Join(f.Get(0), f.Get(1), f.attrs[0][0], f.attrs[1][0]);
  JoinGraph g = ExtractJoinGraph(*q, *f.model);
  ASSERT_TRUE(g.valid());
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.nodes().size(), 2u);
  EXPECT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.topology(), JoinTopology::kChain);
  EXPECT_EQ(CountJoinLeaves(*q, *f.model), 2);
}

TEST(JoinGraph, PathOnDistinctAttributesIsChain) {
  // A -a1- B -b1/b2- C -c2- D: every edge uses fresh attributes, so no
  // equivalence class spans more than one edge and no edges are implied.
  Fixture f;
  for (const char* name : {"A", "B", "C", "D"}) f.Add(name, 1000);
  f.Finish();
  ExprPtr q = f.model->Join(f.Get(0), f.Get(1), f.attrs[0][1], f.attrs[1][1]);
  q = f.model->Join(std::move(q), f.Get(2), f.attrs[1][2], f.attrs[2][1]);
  q = f.model->Join(std::move(q), f.Get(3), f.attrs[2][2], f.attrs[3][1]);
  JoinGraph g = ExtractJoinGraph(*q, *f.model);
  ASSERT_TRUE(g.valid());
  EXPECT_TRUE(g.implied_edges().empty());
  EXPECT_EQ(g.topology(), JoinTopology::kChain);
}

TEST(JoinGraph, HubOnDistinctAttributesIsStar) {
  Fixture f;
  for (const char* name : {"Hub", "A", "B", "C"}) f.Add(name, 1000);
  f.Finish();
  ExprPtr q = f.model->Join(f.Get(0), f.Get(1), f.attrs[0][0], f.attrs[1][0]);
  q = f.model->Join(std::move(q), f.Get(2), f.attrs[0][1], f.attrs[2][0]);
  q = f.model->Join(std::move(q), f.Get(3), f.attrs[0][2], f.attrs[3][0]);
  JoinGraph g = ExtractJoinGraph(*q, *f.model);
  ASSERT_TRUE(g.valid());
  EXPECT_EQ(g.topology(), JoinTopology::kStar);
}

TEST(JoinGraph, SharedAttributeChainIsClique) {
  // A chain written entirely on attribute 0 of every relation: transitivity
  // implies a join between every pair, so the enumeration-relevant shape is
  // a clique even though only 3 predicates are written.
  Fixture f;
  for (const char* name : {"A", "B", "C", "D"}) f.Add(name, 1000);
  f.Finish();
  ExprPtr q = f.model->Join(f.Get(0), f.Get(1), f.attrs[0][0], f.attrs[1][0]);
  q = f.model->Join(std::move(q), f.Get(2), f.attrs[1][0], f.attrs[2][0]);
  q = f.model->Join(std::move(q), f.Get(3), f.attrs[2][0], f.attrs[3][0]);
  JoinGraph g = ExtractJoinGraph(*q, *f.model);
  ASSERT_TRUE(g.valid());
  // Pairs (A,C), (A,D), (B,D) are implied; with the 3 explicit edges the
  // adjacency is complete.
  EXPECT_EQ(g.implied_edges().size(), 3u);
  EXPECT_EQ(g.topology(), JoinTopology::kClique);
}

TEST(JoinGraph, BroomIsGeneral) {
  // A - B - C with both D and E hanging off C: neither a path (C has degree
  // 3) nor a star (no node touches all 4 others).
  Fixture f;
  for (const char* name : {"A", "B", "C", "D", "E"}) f.Add(name, 1000);
  f.Finish();
  ExprPtr q = f.model->Join(f.Get(0), f.Get(1), f.attrs[0][0], f.attrs[1][0]);
  q = f.model->Join(std::move(q), f.Get(2), f.attrs[1][1], f.attrs[2][0]);
  q = f.model->Join(std::move(q), f.Get(3), f.attrs[2][1], f.attrs[3][0]);
  q = f.model->Join(std::move(q), f.Get(4), f.attrs[2][2], f.attrs[4][0]);
  JoinGraph g = ExtractJoinGraph(*q, *f.model);
  ASSERT_TRUE(g.valid());
  EXPECT_EQ(g.topology(), JoinTopology::kGeneral);
}

TEST(JoinGraph, AmbiguousSelfJoinIsInvalidAndNotReordered) {
  // (A ⋈ A) ⋈ B: the second predicate's left attribute exists in both A
  // leaves, so it cannot be pinned to one endpoint. The graph is invalid —
  // effectively missing that edge, leaving B disconnected — and greedy
  // ordering must refuse it (the search then runs unseeded).
  Fixture f;
  f.Add("A", 1000);
  f.Add("B", 2000);
  f.Finish();
  ExprPtr self =
      f.model->Join(f.Get(0), f.Get(0), f.attrs[0][0], f.attrs[0][0]);
  ExprPtr q = f.model->Join(std::move(self), f.Get(1), f.attrs[0][1],
                            f.attrs[1][0]);
  JoinGraph g = ExtractJoinGraph(*q, *f.model);
  EXPECT_FALSE(g.valid());
  EXPECT_FALSE(g.connected());
  EXPECT_EQ(g.topology(), JoinTopology::kDisconnected);
  EXPECT_EQ(GreedyJoinOrder(g, *f.model, /*left_deep=*/false), nullptr);
  EXPECT_EQ(GreedyReorderQuery(*q, *f.model), nullptr);
}

TEST(JoinGraph, LeafSelectionsFoldIntoNodeCardinality) {
  // Leaves are maximal non-join subtrees: a SELECT over a GET is one node
  // whose cardinality reflects the selection.
  Fixture f;
  f.Add("A", 1000);
  f.Add("B", 1000);
  f.Finish();
  ExprPtr filtered = f.model->Select(f.Get(0), f.attrs[0][2], CmpOp::kLess,
                                     10, 0.2);
  ExprPtr q = f.model->Join(std::move(filtered), f.Get(1), f.attrs[0][0],
                            f.attrs[1][0]);
  JoinGraph g = ExtractJoinGraph(*q, *f.model);
  ASSERT_TRUE(g.valid());
  ASSERT_EQ(g.nodes().size(), 2u);
  EXPECT_NEAR(g.nodes()[0].cardinality, 200.0, 1e-6);
  EXPECT_NEAR(g.nodes()[1].cardinality, 1000.0, 1e-6);
}

TEST(JoinGraph, GeneratedScalingFamiliesClassify) {
  using JG = WorkloadOptions::JoinGraph;
  struct Case {
    JG family;
    JoinTopology want;
  };
  const Case cases[] = {{JG::kChain, JoinTopology::kChain},
                        {JG::kStar, JoinTopology::kStar},
                        {JG::kClique, JoinTopology::kClique}};
  for (const Case& c : cases) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      Workload w = GenerateWorkload(JoinScalingOptions(c.family, 10), seed);
      JoinGraph g = ExtractJoinGraph(*w.query, *w.model);
      ASSERT_TRUE(g.valid());
      EXPECT_TRUE(g.connected());
      EXPECT_EQ(g.nodes().size(), 10u);
      EXPECT_EQ(g.topology(), c.want)
          << JoinTopologyName(g.topology()) << " seed " << seed;
    }
  }
}

TEST(JoinGraph, GreedyTreeCarriesAllPredicates) {
  for (uint64_t seed : {1u, 5u, 9u}) {
    WorkloadOptions opts;
    opts.num_relations = 7;
    Workload w = GenerateWorkload(opts, seed);
    ExprPtr reordered = GreedyReorderQuery(*w.query, *w.model);
    ASSERT_NE(reordered, nullptr);
    EXPECT_EQ(CountJoins(*w.model, *reordered), 6);
    EXPECT_EQ(CountJoinLeaves(*reordered, *w.model), 7);
    // Re-extraction of the reordered tree must still be a sound graph.
    JoinGraph g = ExtractJoinGraph(*reordered, *w.model);
    EXPECT_TRUE(g.valid());
    EXPECT_TRUE(g.connected());
  }
}

TEST(JoinGraph, GreedyReorderPreservesOptimalCost) {
  // The reordered tree is reachable from the original via join
  // commutativity/associativity, so exhaustive search over either must find
  // the same optimum.
  for (uint64_t seed : {11u, 22u, 33u}) {
    WorkloadOptions opts;
    opts.num_relations = 6;
    Workload w = GenerateWorkload(opts, seed);
    ExprPtr reordered = GreedyReorderQuery(*w.query, *w.model);
    ASSERT_NE(reordered, nullptr);

    Optimizer original(*w.model);
    StatusOr<PlanPtr> po = original.Optimize(*w.query, w.required);
    ASSERT_TRUE(po.ok()) << po.status().ToString();

    Optimizer greedy(*w.model);
    StatusOr<PlanPtr> pg = greedy.Optimize(*reordered, w.required);
    ASSERT_TRUE(pg.ok()) << pg.status().ToString();

    const CostModel& cm = w.model->cost_model();
    EXPECT_NEAR(cm.Total((*po)->cost()), cm.Total((*pg)->cost()),
                1e-9 * cm.Total((*po)->cost()))
        << "seed " << seed;
  }
}

TEST(JoinGraph, LeftDeepOrderingHasNoCompositeInner) {
  Workload w = GenerateWorkload(
      JoinScalingOptions(WorkloadOptions::JoinGraph::kChain, 8), 4);
  JoinGraph g = ExtractJoinGraph(*w.query, *w.model);
  ASSERT_TRUE(g.valid());
  ExprPtr tree = GreedyJoinOrder(g, *w.model, /*left_deep=*/true);
  ASSERT_NE(tree, nullptr);
  std::function<void(const Expr&)> walk = [&](const Expr& e) {
    if (e.op() == w.model->ops().join) {
      EXPECT_NE(e.input(1)->op(), w.model->ops().join)
          << "right input must not be a join";
    }
    for (const auto& in : e.inputs()) walk(*in);
  };
  walk(*tree);
  EXPECT_EQ(CountJoins(*w.model, *tree), 7);
}

TEST(JoinGraph, QueryWithoutJoinYieldsEmptyGraph) {
  Fixture f;
  f.Add("A", 1000);
  f.Finish();
  ExprPtr q = f.Get(0);
  JoinGraph g = ExtractJoinGraph(*q, *f.model);
  EXPECT_TRUE(g.nodes().empty());
  EXPECT_EQ(CountJoinLeaves(*q, *f.model), 1);
  EXPECT_EQ(GreedyReorderQuery(*q, *f.model), nullptr);
}

}  // namespace
}  // namespace volcano::rel
