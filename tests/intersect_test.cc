// Intersection tests: the paper's showcase for multiple alternative input
// property vectors (section 3) — "for the intersection of two inputs R and
// S ... both these sort orders can be specified by the optimizer implementor
// and will be optimized by the generated optimizer". Covers optimization
// (alternative orders, order exploitation) and execution.

#include <gtest/gtest.h>

#include "exec/datagen.h"
#include "exec/plan_exec.h"
#include "relational/rel_plan_cost.h"
#include "search/optimizer.h"

namespace volcano {
namespace {

struct Fixture {
  explicit Fixture(bool sorted_inputs, int sort_col = 0) {
    // Two union-compatible relations (same column count); intersection is
    // positional.
    VOLCANO_CHECK(catalog.AddRelation("R", 3000, 100, 3, {40, 40, 40}).ok());
    VOLCANO_CHECK(catalog.AddRelation("S", 3000, 100, 3, {40, 40, 40}).ok());
    if (sorted_inputs) {
      // R stored sorted by (a<i>, ...) and S by the corresponding columns —
      // the "R sorted on (A,B,C) and S sorted on (B,A,C)" situation.
      std::vector<Symbol> r_order, s_order;
      for (int i = 0; i < 3; ++i) {
        int col = (sort_col + i) % 3;
        r_order.push_back(
            catalog.symbols().Lookup("R.a" + std::to_string(col)));
        s_order.push_back(
            catalog.symbols().Lookup("S.a" + std::to_string(col)));
      }
      VOLCANO_CHECK(
          catalog.SetSortedOn(catalog.symbols().Lookup("R"), r_order).ok());
      VOLCANO_CHECK(
          catalog.SetSortedOn(catalog.symbols().Lookup("S"), s_order).ok());
    }
    model = std::make_unique<rel::RelModel>(catalog);
    query = model->Intersect(model->Get("R"), model->Get("S"));
  }

  rel::Catalog catalog;
  std::unique_ptr<rel::RelModel> model;
  ExprPtr query;
};

TEST(Intersect, UnsortedInputsPreferHashIntersect) {
  Fixture f(/*sorted_inputs=*/false);
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*f.query, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op(), f.model->ops().hash_intersect);
}

TEST(Intersect, StoredOrdersEnableMergeIntersect) {
  // With both files fully sorted in corresponding column order, the
  // merge-based intersection runs without any sorts and wins.
  Fixture f(/*sorted_inputs=*/true, /*sort_col=*/0);
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*f.query, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op(), f.model->ops().merge_intersect);
  EXPECT_EQ((*plan)->input(0)->op(), f.model->ops().file_scan);
  EXPECT_EQ((*plan)->input(1)->op(), f.model->ops().file_scan);
}

TEST(Intersect, AlternativeOrderIsAlsoExploited) {
  // Files sorted on the *rotated* column order (a1, a2, a0): only the
  // second alternative input property vector matches; the optimizer must
  // still find the sort-free merge plan ("any sort order ... will suffice
  // as long as the two inputs are sorted in the same way").
  Fixture f(/*sorted_inputs=*/true, /*sort_col=*/1);
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*f.query, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op(), f.model->ops().merge_intersect);
  EXPECT_EQ((*plan)->input(0)->op(), f.model->ops().file_scan);
  EXPECT_EQ((*plan)->input(1)->op(), f.model->ops().file_scan);
}

TEST(Intersect, RequiredOrderDrivesInputOrders) {
  // An ORDER BY on a non-leading attribute forces the permutation starting
  // with that attribute onto both inputs.
  Fixture f(/*sorted_inputs=*/false);
  Symbol r_a1 = f.catalog.symbols().Lookup("R.a1");
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*f.query, f.model->Sorted({r_a1}));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE((*plan)->props()->Covers(*f.model->Sorted({r_a1})));
}

TEST(Intersect, ExecutionMatchesReferenceForAllPlanShapes) {
  for (bool sorted : {false, true}) {
    Fixture f(sorted);
    Optimizer opt(*f.model);
    StatusOr<PlanPtr> plan = opt.Optimize(*f.query, nullptr);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(rel::ValidatePlan(**plan, *f.model).ok());

    exec::Database db = exec::GenerateDatabase(f.catalog, 17);
    std::vector<exec::Row> got = exec::ExecutePlan(**plan, *f.model, db);
    std::vector<exec::Row> want = exec::EvalLogical(*f.query, *f.model, db);
    // Intersection schemas are positional; R's column order is the output.
    EXPECT_TRUE(exec::SameMultiset(got, want))
        << "sorted=" << sorted << " got " << got.size() << " want "
        << want.size();
    EXPECT_FALSE(want.empty()) << "test data should produce matches";
  }
}

TEST(Intersect, CommutedInputsProduceSameResult) {
  Fixture f(/*sorted_inputs=*/false);
  ExprPtr reversed = f.model->Intersect(f.model->Get("S"), f.model->Get("R"));
  exec::Database db = exec::GenerateDatabase(f.catalog, 23);
  std::vector<exec::Row> a = exec::EvalLogical(*f.query, *f.model, db);
  std::vector<exec::Row> b = exec::EvalLogical(*reversed, *f.model, db);
  EXPECT_TRUE(exec::SameMultiset(a, b));
}

}  // namespace
}  // namespace volcano
