// Differential engine tests: the task engine (single-threaded and parallel)
// must choose byte-identical plans at identical cost to the recursive
// Figure-2 engine on every committed workload. This is the acceptance gate
// for the explicit search core — any divergence in budget checkpoints, move
// ordering, branch-and-bound limits, or tie-breaking shows up here as a
// plan-line mismatch long before it would move the committed plan digest
// (tools/plan_digest).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "relational/query_gen.h"
#include "search/optimizer.h"
#include "search/search_config.h"
#include "search/trace_io.h"

namespace volcano {
namespace {

struct RunOutput {
  bool ok = false;
  std::string status;
  std::string plan_line;
  double cost = 0.0;
  SearchStats stats;
};

RunOutput RunOne(const rel::Workload& w, const SearchOptions& opts) {
  Optimizer opt(*w.model, SearchConfig::FromOptions(opts).value());
  StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
  RunOutput out;
  out.stats = opt.stats();
  if (!plan.ok()) {
    out.status = plan.status().ToString();
    return out;
  }
  out.ok = true;
  out.plan_line = PlanToLine(**plan, w.model->registry());
  out.cost = w.model->cost_model().Total((*plan)->cost());
  return out;
}

rel::Workload MakeChain(int n, uint64_t seed, bool order_by) {
  rel::WorkloadOptions wopts;
  wopts.num_relations = n;
  wopts.join_graph = rel::WorkloadOptions::JoinGraph::kChain;
  wopts.hub_attr_prob = 0.25;
  wopts.sorted_base_prob = 0.5;
  wopts.order_by_prob = order_by ? 1.0 : 0.0;
  return rel::GenerateWorkload(wopts, seed);
}

// The same grid the committed plan digest covers: chain joins of 2..10
// relations x 3 seeds, with and without ORDER BY.
TEST(EngineDifferential, TaskMatchesRecursiveOnDigestGrid) {
  for (int order_by = 0; order_by <= 1; ++order_by) {
    for (int n = 2; n <= 10; ++n) {
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        rel::Workload w = MakeChain(n, seed, order_by != 0);
        SearchOptions recursive;
        recursive.engine = SearchOptions::Engine::kRecursive;
        SearchOptions task;
        task.engine = SearchOptions::Engine::kTask;

        RunOutput r = RunOne(w, recursive);
        RunOutput t = RunOne(w, task);
        SCOPED_TRACE("n=" + std::to_string(n) + " seed=" +
                     std::to_string(seed) + " order_by=" +
                     std::to_string(order_by));
        ASSERT_EQ(r.ok, t.ok) << r.status << " vs " << t.status;
        if (!r.ok) continue;
        EXPECT_EQ(r.plan_line, t.plan_line);
        EXPECT_DOUBLE_EQ(r.cost, t.cost);
        // Effort parity: the task engine replicates the recursive control
        // flow site for site, so the shared counters agree exactly.
        EXPECT_EQ(r.stats.find_best_plan_calls, t.stats.find_best_plan_calls);
        EXPECT_EQ(r.stats.goals_started, t.stats.goals_started);
        EXPECT_EQ(r.stats.algorithm_moves, t.stats.algorithm_moves);
        EXPECT_EQ(r.stats.enforcer_moves, t.stats.enforcer_moves);
        EXPECT_EQ(r.stats.moves_pruned, t.stats.moves_pruned);
        EXPECT_EQ(r.stats.budget_checkpoints, t.stats.budget_checkpoints);
        // And only the task engine steps tasks.
        EXPECT_EQ(r.stats.tasks_executed, 0u);
        EXPECT_GT(t.stats.tasks_executed, 0u);
      }
    }
  }
}

TEST(EngineDifferential, ParallelMatchesSingleThreadedOnDigestGrid) {
  bool any_fan_out = false;
  for (int order_by = 0; order_by <= 1; ++order_by) {
    for (int n = 2; n <= 10; ++n) {
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        rel::Workload w = MakeChain(n, seed, order_by != 0);
        SearchOptions serial;
        SearchOptions parallel;
        parallel.workers = 4;

        RunOutput s = RunOne(w, serial);
        RunOutput p = RunOne(w, parallel);
        SCOPED_TRACE("n=" + std::to_string(n) + " seed=" +
                     std::to_string(seed) + " order_by=" +
                     std::to_string(order_by));
        ASSERT_EQ(s.ok, p.ok) << s.status << " vs " << p.status;
        if (!s.ok) continue;
        EXPECT_EQ(s.plan_line, p.plan_line);
        EXPECT_DOUBLE_EQ(s.cost, p.cost);
        EXPECT_TRUE(s.stats.worker_busy_seconds.empty());
        if (!p.stats.worker_busy_seconds.empty()) any_fan_out = true;
      }
    }
  }
  // The grid must actually exercise the worker pool somewhere, or the
  // parallel comparison above proves nothing.
  EXPECT_TRUE(any_fan_out);
}

// The best-first engine schedules goals from a global frontier instead of a
// depth-first stack, but with no caps set it demands every subgoal at an
// infinite limit and reduces each goal's moves in canonical order — so its
// plans (and costs) are identical to the task engine's across the digest
// grid. Effort counters legitimately differ (the schedule is global, and
// branch-and-bound cannot prune an already-demanded subgoal), so only plan
// and cost are compared — the same contract the parallel fan-out meets.
TEST(EngineDifferential, BestFirstMatchesTaskOnDigestGrid) {
  for (int order_by = 0; order_by <= 1; ++order_by) {
    for (int n = 2; n <= 10; ++n) {
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        rel::Workload w = MakeChain(n, seed, order_by != 0);
        SearchOptions task;
        task.engine = SearchOptions::Engine::kTask;
        SearchOptions bf;
        bf.engine = SearchOptions::Engine::kBestFirst;

        RunOutput t = RunOne(w, task);
        RunOutput b = RunOne(w, bf);
        SCOPED_TRACE("n=" + std::to_string(n) + " seed=" +
                     std::to_string(seed) + " order_by=" +
                     std::to_string(order_by));
        ASSERT_EQ(t.ok, b.ok) << t.status << " vs " << b.status;
        if (!t.ok) continue;
        EXPECT_EQ(t.plan_line, b.plan_line);
        EXPECT_DOUBLE_EQ(t.cost, b.cost);
      }
    }
  }
}

// Fast mode trades plan-shape reproducibility for a shared branch-and-bound
// incumbent; what it must NOT trade is optimality. Across the digest grid the
// fast-mode winner re-costs exactly equal to the deterministic winner (plan
// lines may legitimately differ when distinct shapes tie on cost).
TEST(EngineDifferential, FastModeCostMatchesDeterministicOnDigestGrid) {
  for (int order_by = 0; order_by <= 1; ++order_by) {
    for (int n = 2; n <= 10; ++n) {
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        rel::Workload w = MakeChain(n, seed, order_by != 0);
        SearchOptions det;
        det.workers = 4;
        SearchOptions fast = det;
        fast.parallel_mode = SearchOptions::ParallelMode::kFast;

        RunOutput d = RunOne(w, det);
        RunOutput f = RunOne(w, fast);
        SCOPED_TRACE("n=" + std::to_string(n) + " seed=" +
                     std::to_string(seed) + " order_by=" +
                     std::to_string(order_by));
        ASSERT_EQ(d.ok, f.ok) << d.status << " vs " << f.status;
        if (!d.ok) continue;
        EXPECT_DOUBLE_EQ(d.cost, f.cost);
      }
    }
  }
}

// The interleaved (Figure 2 verbatim) strategy pursues serially even with
// workers configured; plans still match the recursive engine.
TEST(EngineDifferential, InterleavedStrategyMatchesAcrossEngines) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    rel::Workload w = MakeChain(4, seed, seed % 2 == 0);
    SearchOptions recursive;
    recursive.engine = SearchOptions::Engine::kRecursive;
    recursive.strategy = SearchOptions::Strategy::kInterleaved;
    SearchOptions task = recursive;
    task.engine = SearchOptions::Engine::kTask;
    task.workers = 4;

    RunOutput r = RunOne(w, recursive);
    RunOutput t = RunOne(w, task);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ASSERT_EQ(r.ok, t.ok) << r.status << " vs " << t.status;
    if (!r.ok) continue;
    EXPECT_EQ(r.plan_line, t.plan_line);
    EXPECT_DOUBLE_EQ(r.cost, t.cost);
  }
}

// Glue-properties ablation: both engines run the Starburst-style glue path.
TEST(EngineDifferential, GluePropertiesMatchesAcrossEngines) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    rel::Workload w = MakeChain(4, seed, /*order_by=*/true);
    SearchOptions recursive;
    recursive.engine = SearchOptions::Engine::kRecursive;
    recursive.glue_properties = true;
    SearchOptions task = recursive;
    task.engine = SearchOptions::Engine::kTask;

    RunOutput r = RunOne(w, recursive);
    RunOutput t = RunOne(w, task);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ASSERT_EQ(r.ok, t.ok) << r.status << " vs " << t.status;
    if (!r.ok) continue;
    EXPECT_EQ(r.plan_line, t.plan_line);
    EXPECT_DOUBLE_EQ(r.cost, t.cost);
  }
}

// Trace determinism: the optimizer stamps every event with a 1-based,
// strictly contiguous per-optimizer sequence number, single-threaded events
// carry worker 0, and parallel workers stamp their own ids — so merged
// multi-worker streams re-sort into one total order.
TEST(EngineDifferential, TraceSequenceIsMonotonicAndContiguous) {
  rel::Workload w = MakeChain(5, 1, /*order_by=*/false);
  TraceLog log;
  SearchOptions opts;
  opts.trace = &log;
  Optimizer opt(*w.model, SearchConfig::FromOptions(opts).value());
  ASSERT_TRUE(opt.Optimize(*w.query, w.required).ok());
  ASSERT_FALSE(log.entries().empty());
  uint64_t expect_seq = 1;
  for (const TraceLog::Entry& e : log.entries()) {
    EXPECT_EQ(e.event.seq, expect_seq);
    EXPECT_EQ(e.event.worker, 0u);
    ++expect_seq;
  }
}

TEST(EngineDifferential, ParallelTraceCarriesWorkerIds) {
  rel::Workload w = MakeChain(5, 1, /*order_by=*/false);
  TraceLog log;
  SearchOptions opts;
  opts.trace = &log;
  opts.workers = 4;
  Optimizer opt(*w.model, SearchConfig::FromOptions(opts).value());
  ASSERT_TRUE(opt.Optimize(*w.query, w.required).ok());
  ASSERT_FALSE(log.entries().empty());
  uint64_t expect_seq = 1;
  bool any_worker = false;
  for (const TraceLog::Entry& e : log.entries()) {
    EXPECT_EQ(e.event.seq, expect_seq);  // total order across workers
    EXPECT_LE(e.event.worker, 4u);
    if (e.event.worker != 0) any_worker = true;
    ++expect_seq;
  }
  EXPECT_TRUE(any_worker);
  EXPECT_FALSE(opt.stats().worker_busy_seconds.empty());
}

}  // namespace
}  // namespace volcano
