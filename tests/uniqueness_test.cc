// Uniqueness as a physical property (paper §4.1: "uniqueness might be a
// physical property with two enforcers, sort- and hash-based") with the two
// §2.2 enforcer behaviours: SORT_DEDUP "ensures two properties" (order and
// uniqueness), HASH_DEDUP "enforces one but destroys another".

#include <gtest/gtest.h>

#include <set>

#include "exec/datagen.h"
#include "exec/plan_exec.h"
#include "relational/rel_plan_cost.h"
#include "relational/sql.h"
#include "search/optimizer.h"

namespace volcano {
namespace {

struct Fixture {
  Fixture() {
    // A two-column relation with few distinct values: projections produce
    // plenty of duplicates.
    VOLCANO_CHECK(catalog.AddRelation("T", 2000, 100, 3, {20, 10, 5}).ok());
    model = std::make_unique<rel::RelModel>(catalog);
  }
  Symbol Attr(const char* n) { return catalog.symbols().Lookup(n); }
  rel::Catalog catalog;
  std::unique_ptr<rel::RelModel> model;
};

TEST(UniqueProps, CoverSemantics) {
  SymbolTable syms;
  Symbol a = syms.Intern("a");
  PhysPropsPtr plain = rel::RelPhysProps::Make(syms);
  PhysPropsPtr unique = rel::RelPhysProps::Make(syms, {}, {}, true);
  PhysPropsPtr sorted_unique =
      rel::RelPhysProps::Make(syms, rel::SortOrder{{a}}, {}, true);

  EXPECT_TRUE(unique->Covers(*plain));
  EXPECT_FALSE(plain->Covers(*unique));
  EXPECT_TRUE(sorted_unique->Covers(*unique));
  EXPECT_FALSE(unique->Covers(*sorted_unique));
  EXPECT_FALSE(plain->Equals(*unique));
  EXPECT_NE(plain->Hash(), unique->Hash());
  EXPECT_NE(unique->ToString().find("unique"), std::string::npos);
}

TEST(Uniqueness, PureUniqueGoalUsesHashDedup) {
  // No order required: the hash-based enforcer is cheaper than sorting.
  Fixture f;
  ExprPtr q = f.model->Project(f.model->Get("T"), {f.Attr("T.a2")});
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, f.model->Unique());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->op(), f.model->ops().hash_dedup);
  EXPECT_TRUE(rel::ValidatePlan(**plan, *f.model).ok());
}

TEST(Uniqueness, OrderedUniqueGoalUsesSortDedup) {
  // Order AND uniqueness required: one SORT_DEDUP establishes both — the
  // "enforcer ensures two properties" case — beating sort-over-hash-dedup.
  Fixture f;
  ExprPtr q = f.model->Project(f.model->Get("T"), {f.Attr("T.a2")});
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan =
      opt.Optimize(*q, f.model->SortedUnique({f.Attr("T.a2")}));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->op(), f.model->ops().sort_dedup);
}

TEST(Uniqueness, AggregationDeliversUniquenessForFree) {
  // The aggregate output is one row per group: no dedup operator needed.
  Fixture f;
  Symbol cnt = f.catalog.symbols().Intern("cnt");
  ExprPtr q = f.model->Aggregate(f.model->Get("T"), f.Attr("T.a0"), cnt);
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, f.model->Unique());
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE((*plan)->props()->Covers(*f.model->Unique()));
  EXPECT_NE((*plan)->op(), f.model->ops().hash_dedup);
  EXPECT_NE((*plan)->op(), f.model->ops().sort_dedup);
}

TEST(Uniqueness, IntersectionDeliversUniquenessForFree) {
  Fixture f;
  rel::Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("R", 500, 100, 2, {20, 20}).ok());
  ASSERT_TRUE(catalog.AddRelation("S", 500, 100, 2, {20, 20}).ok());
  rel::RelModel model(catalog);
  ExprPtr q = model.Intersect(model.Get("R"), model.Get("S"));
  Optimizer opt(model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, model.Unique());
  ASSERT_TRUE(plan.ok());
  EXPECT_NE((*plan)->op(), model.ops().hash_dedup);
  EXPECT_NE((*plan)->op(), model.ops().sort_dedup);
}

TEST(Uniqueness, ProjectionCannotClaimUniqueness) {
  // PROJECT drops columns and may create duplicates: the dedup must sit
  // above the projection, never vanish into it.
  Fixture f;
  ExprPtr q = f.model->Project(f.model->Get("T"), {f.Attr("T.a2")});
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, f.model->Unique());
  ASSERT_TRUE(plan.ok());
  // Below the dedup enforcer sits the projection.
  ASSERT_EQ((*plan)->num_inputs(), 1u);
  EXPECT_EQ((*plan)->input(0)->op(), f.model->ops().project_op);
}

TEST(Uniqueness, ExecutionActuallyDeduplicates) {
  Fixture f;
  ExprPtr q = f.model->Project(f.model->Get("T"), {f.Attr("T.a2")});
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, f.model->Unique());
  ASSERT_TRUE(plan.ok());

  exec::Database db = exec::GenerateDatabase(f.catalog, 83);
  std::vector<exec::Row> rows = exec::ExecutePlan(**plan, *f.model, db);
  // At most distinct(T.a2) = 5 rows, all distinct, and exactly the distinct
  // reference values.
  EXPECT_LE(rows.size(), 5u);
  std::set<exec::Row> unique_rows(rows.begin(), rows.end());
  EXPECT_EQ(unique_rows.size(), rows.size());
  std::vector<exec::Row> reference = exec::EvalLogical(*q, *f.model, db);
  std::set<exec::Row> expected(reference.begin(), reference.end());
  EXPECT_EQ(unique_rows, expected);
}

TEST(Uniqueness, SortDedupDeliversSortedOutput) {
  Fixture f;
  ExprPtr q = f.model->Project(f.model->Get("T"), {f.Attr("T.a1")});
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan =
      opt.Optimize(*q, f.model->SortedUnique({f.Attr("T.a1")}));
  ASSERT_TRUE(plan.ok());

  exec::Database db = exec::GenerateDatabase(f.catalog, 89);
  std::vector<exec::Row> rows = exec::ExecutePlan(**plan, *f.model, db);
  EXPECT_TRUE(exec::IsSortedBy(rows, {0}));
  std::set<exec::Row> unique_rows(rows.begin(), rows.end());
  EXPECT_EQ(unique_rows.size(), rows.size());
}

TEST(Uniqueness, SqlSelectDistinct) {
  Fixture f;
  StatusOr<rel::ParsedQuery> q = rel::ParseSql(
      "SELECT DISTINCT T.a2 FROM T ORDER BY T.a2", *f.model,
      f.catalog.symbols());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(rel::AsRel(*q->required).unique());

  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q->expr, q->required);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op(), f.model->ops().sort_dedup);

  exec::Database db = exec::GenerateDatabase(f.catalog, 97);
  std::vector<exec::Row> rows = exec::ExecutePlan(**plan, *f.model, db);
  EXPECT_LE(rows.size(), 5u);
  EXPECT_TRUE(exec::IsSortedBy(rows, {0}));
}

TEST(Uniqueness, FilterAndSortPreserveUniqueness) {
  // A selection on top of a DISTINCT subresult keeps it distinct: the
  // requirement passes through FILTER without a second dedup.
  Fixture f;
  ExprPtr proj = f.model->Project(f.model->Get("T"), {f.Attr("T.a2")});
  ExprPtr q = f.model->Select(proj, f.Attr("T.a2"), rel::CmpOp::kLess, 3,
                              0.6);
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, f.model->Unique());
  ASSERT_TRUE(plan.ok());
  int dedups = 0;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& node) {
    if (node.op() == f.model->ops().hash_dedup ||
        node.op() == f.model->ops().sort_dedup) {
      ++dedups;
    }
    for (const auto& in : node.inputs()) walk(*in);
  };
  walk(**plan);
  EXPECT_EQ(dedups, 1);
  EXPECT_TRUE(rel::ValidatePlan(**plan, *f.model).ok());
}

}  // namespace
}  // namespace volcano
