// Stress / property sweeps: broad randomized invariants over many seeds and
// rule configurations — the "did we break anything anywhere" suite.
// Parameterized (TEST_P) over workload shapes.

#include <gtest/gtest.h>

#include "exec/datagen.h"
#include "exec/plan_exec.h"
#include "relational/query_gen.h"
#include "relational/rel_plan_cost.h"
#include "search/optimizer.h"
#include "search/search_config.h"

namespace volcano {
namespace {

struct SweepCase {
  int relations;
  rel::WorkloadOptions::JoinGraph graph;
  bool pushdown_rules;  // also enables pull-up (inverse pair)
  bool multiway;
  const char* label;
};

class Sweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  rel::Workload Make(uint64_t seed) const {
    const SweepCase& c = GetParam();
    rel::WorkloadOptions wopts;
    wopts.num_relations = c.relations;
    wopts.join_graph = c.graph;
    wopts.sorted_base_prob = 0.5;
    wopts.order_by_prob = 0.5;
    wopts.min_cardinality = 50;
    wopts.max_cardinality = 200;
    rel::RelModelOptions mopts;
    mopts.enable_select_pushdown = c.pushdown_rules;
    mopts.enable_select_pullup = c.pushdown_rules;
    mopts.enable_multiway_join = c.multiway;
    return rel::GenerateWorkload(wopts, seed, mopts);
  }
};

TEST_P(Sweep, InvariantsHoldAcrossSeeds) {
  for (uint64_t seed = 100; seed < 112; ++seed) {
    rel::Workload w = Make(seed);
    Optimizer opt(*w.model);
    StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString() << " seed " << seed;

    // 1. The plan satisfies the requested properties.
    EXPECT_TRUE((*plan)->props()->Covers(*w.required));
    // 2. The plan is structurally valid (merge joins get sorted inputs...).
    EXPECT_TRUE(rel::ValidatePlan(**plan, *w.model).ok()) << "seed " << seed;
    // 3. Reported cost equals independent bottom-up recosting.
    const CostModel& cm = w.model->cost_model();
    double reported = cm.Total((*plan)->cost());
    EXPECT_NEAR(reported, cm.Total(rel::RecostPlan(**plan, *w.model)),
                1e-9 * reported);
    // 4. Execution matches the reference evaluation.
    exec::Database db = exec::GenerateDatabase(*w.catalog, seed);
    std::vector<exec::Row> got = exec::ExecutePlan(**plan, *w.model, db);
    std::vector<exec::Row> want = exec::EvalLogical(*w.query, *w.model, db);
    exec::Schema gs = exec::PlanSchema(**plan, *w.model, db);
    exec::Schema ws = exec::LogicalSchema(*w.query, *w.model, db);
    EXPECT_TRUE(exec::SameMultiset(exec::ReorderToSchema(got, gs, ws), want))
        << "seed " << seed;
  }
}

TEST_P(Sweep, SearchOptionsNeverChangePlanCost) {
  for (uint64_t seed = 200; seed < 206; ++seed) {
    rel::Workload w = Make(seed);
    const CostModel& cm = w.model->cost_model();

    Optimizer ref(*w.model);
    StatusOr<PlanPtr> ref_plan = ref.Optimize(*w.query, w.required);
    ASSERT_TRUE(ref_plan.ok());
    double ref_cost = cm.Total((*ref_plan)->cost());

    for (int variant = 0; variant < 3; ++variant) {
      SearchOptions opts;
      if (variant == 0) opts.branch_and_bound = false;
      if (variant == 1) opts.memoize_failures = false;
      if (variant == 2) {
        opts.branch_and_bound = false;
        opts.memoize_failures = false;
      }
      Optimizer alt(*w.model, SearchConfig::FromOptions(opts).value());
      StatusOr<PlanPtr> alt_plan = alt.Optimize(*w.query, w.required);
      ASSERT_TRUE(alt_plan.ok());
      EXPECT_NEAR(cm.Total((*alt_plan)->cost()), ref_cost, 1e-9 * ref_cost)
          << "seed " << seed << " variant " << variant;
    }
  }
}

std::vector<SweepCase> Cases() {
  using G = rel::WorkloadOptions::JoinGraph;
  return {
      {3, G::kChain, false, false, "chain3"},
      {5, G::kChain, false, false, "chain5"},
      {5, G::kStar, false, false, "star5"},
      {5, G::kRandomTree, false, false, "random5"},
      {4, G::kRandomTree, true, false, "random4_inverse_rules"},
      {5, G::kRandomTree, false, true, "random5_multiway"},
      {6, G::kStar, false, false, "star6"},
  };
}

INSTANTIATE_TEST_SUITE_P(Shapes, Sweep, ::testing::ValuesIn(Cases()),
                         [](const ::testing::TestParamInfo<SweepCase>& info) {
                           return info.param.label;
                         });

TEST(CostLimit, CatchesUnreasonableQueries) {
  // "The user interface may permit users to set their own limits to 'catch'
  // unreasonable queries" (paper, §3).
  rel::Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("A", 5000, 100, 2).ok());
  ASSERT_TRUE(catalog.AddRelation("B", 5000, 100, 2).ok());
  rel::RelModel model(catalog);
  ExprPtr q = model.Join(model.Get("A"), model.Get("B"),
                         catalog.symbols().Lookup("A.a0"),
                         catalog.symbols().Lookup("B.a0"));

  Optimizer unlimited(model);
  StatusOr<PlanPtr> best = unlimited.Optimize(*q, nullptr);
  ASSERT_TRUE(best.ok());
  double best_cost = model.cost_model().Total((*best)->cost());

  // A limit below the optimum rejects the query...
  Optimizer strict(model);
  StatusOr<PlanPtr> rejected =
      strict.Optimize(*q, nullptr, Cost::Vector({best_cost * 0.25, 0.0}));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Status::Code::kNotFound);

  // ... and a limit above it still returns the same optimum.
  Optimizer loose(model);
  StatusOr<PlanPtr> accepted =
      loose.Optimize(*q, nullptr, Cost::Vector({best_cost * 2.0, 0.0}));
  ASSERT_TRUE(accepted.ok());
  EXPECT_NEAR(model.cost_model().Total((*accepted)->cost()), best_cost,
              1e-9 * best_cost);
}

TEST(CostLimit, SharedMemoStaysConsistentAcrossLimits) {
  // A failure memoized under a low limit must not poison a later call with a
  // higher limit on the same optimizer instance.
  rel::Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("A", 3000, 100, 2).ok());
  ASSERT_TRUE(catalog.AddRelation("B", 3000, 100, 2).ok());
  rel::RelModel model(catalog);
  ExprPtr q = model.Join(model.Get("A"), model.Get("B"),
                         catalog.symbols().Lookup("A.a0"),
                         catalog.symbols().Lookup("B.a0"));

  Optimizer opt(model);
  GroupId root = opt.AddQuery(*q);
  ASSERT_FALSE(
      opt.OptimizeGroup(root, nullptr, Cost::Vector({0.001, 0.0})).ok());
  StatusOr<PlanPtr> plan = opt.OptimizeGroup(root, nullptr);
  ASSERT_TRUE(plan.ok());

  Optimizer fresh(model);
  StatusOr<PlanPtr> expected = fresh.Optimize(*q, nullptr);
  ASSERT_TRUE(expected.ok());
  EXPECT_DOUBLE_EQ(model.cost_model().Total((*plan)->cost()),
                   model.cost_model().Total((*expected)->cost()));
}

}  // namespace
}  // namespace volcano
