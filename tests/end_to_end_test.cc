// End-to-end correctness: every plan the optimizers produce must compute the
// same result as the naive reference evaluation of the logical query, and
// plans with ORDER BY requirements must actually deliver sorted output.
// These are the property tests that tie the whole system together —
// workload generator, optimizer, EXODUS baseline, plan validation, and the
// execution engine.

#include <gtest/gtest.h>

#include "exec/datagen.h"
#include "exec/plan_exec.h"
#include "exodus/exodus_optimizer.h"
#include "relational/query_gen.h"
#include "relational/rel_plan_cost.h"
#include "search/optimizer.h"

namespace volcano {
namespace {

struct Case {
  int relations;
  uint64_t seed;
  double order_by_prob;
};

class EndToEnd : public ::testing::TestWithParam<Case> {};

rel::Workload MakeWorkload(const Case& c) {
  rel::WorkloadOptions wopts;
  wopts.num_relations = c.relations;
  // Small relations keep the nested-loop reference evaluation fast.
  wopts.min_cardinality = 40;
  wopts.max_cardinality = 120;
  wopts.sorted_base_prob = 0.5;
  wopts.order_by_prob = c.order_by_prob;
  return rel::GenerateWorkload(wopts, c.seed);
}

TEST_P(EndToEnd, VolcanoPlanMatchesReferenceEvaluation) {
  rel::Workload w = MakeWorkload(GetParam());
  Optimizer opt(*w.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(rel::ValidatePlan(**plan, *w.model).ok());

  exec::Database db = exec::GenerateDatabase(*w.catalog, GetParam().seed);
  std::vector<exec::Row> got = exec::ExecutePlan(**plan, *w.model, db);
  std::vector<exec::Row> want = exec::EvalLogical(*w.query, *w.model, db);

  exec::Schema plan_schema = exec::PlanSchema(**plan, *w.model, db);
  exec::Schema ref_schema = exec::LogicalSchema(*w.query, *w.model, db);
  std::vector<exec::Row> got_norm =
      exec::ReorderToSchema(got, plan_schema, ref_schema);
  EXPECT_TRUE(exec::SameMultiset(got_norm, want))
      << "plan result diverges from reference (" << got.size() << " vs "
      << want.size() << " rows)";
}

TEST_P(EndToEnd, OrderByIsDelivered) {
  Case c = GetParam();
  if (c.relations < 2) {
    GTEST_SKIP() << "ORDER BY attributes are drawn from join edges";
  }
  c.order_by_prob = 1.0;
  rel::Workload w = MakeWorkload(c);
  const auto& order = rel::AsRel(*w.required).order();
  ASSERT_FALSE(order.empty());

  Optimizer opt(*w.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE((*plan)->props()->Covers(*w.required));

  exec::Database db = exec::GenerateDatabase(*w.catalog, c.seed);
  exec::Schema schema = exec::PlanSchema(**plan, *w.model, db);
  std::vector<int> cols;
  for (Symbol attr : order.attrs) {
    int col = schema.IndexOf(attr);
    ASSERT_GE(col, 0);
    cols.push_back(col);
  }
  std::vector<exec::Row> rows = exec::ExecutePlan(**plan, *w.model, db);
  EXPECT_TRUE(exec::IsSortedBy(rows, cols));
}

TEST_P(EndToEnd, ExodusPlanMatchesReferenceEvaluation) {
  rel::Workload w = MakeWorkload(GetParam());
  exodus::ExodusOptimizer ex(*w.model);
  StatusOr<PlanPtr> plan = ex.Optimize(*w.query, w.required);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(rel::ValidatePlan(**plan, *w.model).ok());

  exec::Database db = exec::GenerateDatabase(*w.catalog, GetParam().seed);
  std::vector<exec::Row> got = exec::ExecutePlan(**plan, *w.model, db);
  std::vector<exec::Row> want = exec::EvalLogical(*w.query, *w.model, db);
  exec::Schema plan_schema = exec::PlanSchema(**plan, *w.model, db);
  exec::Schema ref_schema = exec::LogicalSchema(*w.query, *w.model, db);
  EXPECT_TRUE(exec::SameMultiset(
      exec::ReorderToSchema(got, plan_schema, ref_schema), want));
}

TEST_P(EndToEnd, VolcanoNeverCostsMoreThanExodus) {
  // Both optimizers are exhaustive over join orders; Volcano additionally
  // exploits physical properties, so (re-costed under the same model) its
  // plan can only be at least as good.
  rel::Workload w = MakeWorkload(GetParam());
  Optimizer opt(*w.model);
  StatusOr<PlanPtr> vplan = opt.Optimize(*w.query, w.required);
  ASSERT_TRUE(vplan.ok());
  exodus::ExodusOptimizer ex(*w.model);
  StatusOr<PlanPtr> eplan = ex.Optimize(*w.query, w.required);
  ASSERT_TRUE(eplan.ok());

  const CostModel& cm = w.model->cost_model();
  double v = cm.Total(rel::RecostPlan(**vplan, *w.model));
  double e = cm.Total(rel::RecostPlan(**eplan, *w.model));
  EXPECT_LE(v, e * (1.0 + 1e-9));
}

std::vector<Case> MakeCases() {
  std::vector<Case> cases;
  for (int relations : {1, 2, 3, 4, 5}) {
    for (uint64_t seed : {11u, 22u, 33u, 44u}) {
      cases.push_back(Case{relations, seed, 0.5});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Workloads, EndToEnd, ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return "r" + std::to_string(info.param.relations) +
                                  "_s" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace volcano
