// SQL front-end tests: parsing, translation to the logical algebra,
// semantic error reporting, and end-to-end optimize + execute.

#include <gtest/gtest.h>

#include "exec/datagen.h"
#include "exec/plan_exec.h"
#include "relational/sql.h"
#include "search/optimizer.h"

namespace volcano::rel {
namespace {

struct Fixture {
  Fixture() {
    VOLCANO_CHECK(catalog.AddRelation("emp", 500, 100, 3, {500, 40, 10}).ok());
    VOLCANO_CHECK(catalog.AddRelation("dept", 40, 100, 2, {40, 5}).ok());
    VOLCANO_CHECK(catalog.AddRelation("loc", 10, 100, 2, {10, 10}).ok());
    model = std::make_unique<RelModel>(catalog);
  }

  StatusOr<ParsedQuery> Parse(std::string_view sql) {
    return ParseSql(sql, *model, catalog.symbols());
  }

  std::string Render(const ParsedQuery& q) {
    return model->ExprToString(*q.expr);
  }

  Catalog catalog;
  std::unique_ptr<RelModel> model;
};

TEST(Sql, SelectStarSingleRelation) {
  Fixture f;
  StatusOr<ParsedQuery> q = f.Parse("SELECT * FROM emp");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(f.Render(*q), "GET[emp]");
  EXPECT_EQ(q->required->ToString(), "any");
}

TEST(Sql, SelectionsAttachToBaseRelations) {
  Fixture f;
  StatusOr<ParsedQuery> q =
      f.Parse("SELECT * FROM emp WHERE emp.a1 < 10 AND emp.a2 = 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(f.Render(*q),
            "SELECT[emp.a2 = 3](SELECT[emp.a1 < 10](GET[emp]))");
}

TEST(Sql, JoinTreeFollowsPredicates) {
  Fixture f;
  StatusOr<ParsedQuery> q = f.Parse(
      "SELECT * FROM emp, dept, loc "
      "WHERE emp.a1 = dept.a0 AND dept.a1 = loc.a0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(f.Render(*q),
            "JOIN[dept.a1 = loc.a0](JOIN[emp.a1 = dept.a0](GET[emp], "
            "GET[dept]), GET[loc])");
}

TEST(Sql, ProjectionAndOrderBy) {
  Fixture f;
  StatusOr<ParsedQuery> q =
      f.Parse("SELECT emp.a0, emp.a1 FROM emp ORDER BY emp.a0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(f.Render(*q), "PROJECT[emp.a0, emp.a1](GET[emp])");
  EXPECT_EQ(q->required->ToString(), "sorted(emp.a0)");
}

TEST(Sql, GroupByCount) {
  Fixture f;
  StatusOr<ParsedQuery> q = f.Parse(
      "SELECT emp.a1, COUNT(*) FROM emp GROUP BY emp.a1 ORDER BY emp.a1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(f.Render(*q), "AGGREGATE[emp.a1 -> count count(*)](GET[emp])");
  EXPECT_EQ(q->required->ToString(), "sorted(emp.a1)");
}

TEST(Sql, KeywordsAreCaseInsensitive) {
  Fixture f;
  EXPECT_TRUE(f.Parse("select * from emp where emp.a1 < 5").ok());
  EXPECT_TRUE(f.Parse("SeLeCt * FrOm emp").ok());
}

TEST(Sql, ComparisonOperators) {
  Fixture f;
  for (const char* op : {"<", "<=", ">", ">=", "="}) {
    std::string sql = std::string("SELECT * FROM emp WHERE emp.a1 ") + op +
                      " 5";
    EXPECT_TRUE(f.Parse(sql).ok()) << sql;
  }
}

TEST(Sql, LeftJoinBecomesOuterJoin) {
  Fixture f;
  StatusOr<ParsedQuery> q =
      f.Parse("SELECT * FROM emp LEFT JOIN dept ON emp.a1 = dept.a0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(f.Render(*q),
            "LEFT_OUTER_JOIN[emp.a1 = dept.a0](GET[emp], GET[dept])");
  // OUTER is optional noise.
  StatusOr<ParsedQuery> q2 =
      f.Parse("SELECT * FROM emp LEFT OUTER JOIN dept ON emp.a1 = dept.a0");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(f.Render(*q), f.Render(*q2));
}

TEST(Sql, NullableSideFilterStaysAboveOuterJoin) {
  // A WHERE filter on the nullable (inner) side cannot be pushed below the
  // outer join; it stays above, producing the SELECT(LEFT_OUTER_JOIN)
  // shape the null-rejection simplification rule matches. The outer-side
  // filter still attaches to its base relation.
  Fixture f;
  StatusOr<ParsedQuery> q = f.Parse(
      "SELECT * FROM emp LEFT JOIN dept ON emp.a1 = dept.a0 "
      "WHERE dept.a1 < 3 AND emp.a2 = 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(f.Render(*q),
            "SELECT[dept.a1 < 3](LEFT_OUTER_JOIN[emp.a1 = dept.a0]("
            "SELECT[emp.a2 = 1](GET[emp]), GET[dept]))");
}

TEST(Sql, InSubqueryBecomesSubqueryNode) {
  Fixture f;
  StatusOr<ParsedQuery> q = f.Parse(
      "SELECT emp.a0 FROM emp WHERE emp.a1 IN "
      "(SELECT dept.a0 FROM dept WHERE dept.a1 < 3)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(f.Render(*q),
            "PROJECT[emp.a0](SUBQUERY[emp.a1 in dept.a0](GET[emp], "
            "SELECT[dept.a1 < 3](GET[dept])))");
}

TEST(Sql, ExistsAndNegationsBecomeSubqueryNodes) {
  Fixture f;
  StatusOr<ParsedQuery> q = f.Parse(
      "SELECT emp.a0 FROM emp WHERE NOT EXISTS "
      "(SELECT * FROM dept WHERE dept.a0 = emp.a1)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(f.Render(*q),
            "PROJECT[emp.a0](SUBQUERY[emp.a1 not exists dept.a0](GET[emp], "
            "GET[dept]))");

  StatusOr<ParsedQuery> q2 = f.Parse(
      "SELECT emp.a0 FROM emp WHERE emp.a1 NOT IN (SELECT dept.a0 FROM "
      "dept)");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(f.Render(*q2),
            "PROJECT[emp.a0](SUBQUERY[emp.a1 not in dept.a0](GET[emp], "
            "GET[dept]))");
}

TEST(Sql, DistinctIsRequiredPropertyAtTopLevelAndOperatorInBodies) {
  Fixture f;
  StatusOr<ParsedQuery> top = f.Parse("SELECT DISTINCT emp.a2 FROM emp");
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_EQ(f.Render(*top), "PROJECT[emp.a2](GET[emp])");
  EXPECT_EQ(top->required->ToString(), "any unique");

  StatusOr<ParsedQuery> ordered =
      f.Parse("SELECT DISTINCT emp.a2 FROM emp ORDER BY emp.a2");
  ASSERT_TRUE(ordered.ok());
  EXPECT_EQ(ordered->required->ToString(), "sorted(emp.a2) unique");

  StatusOr<ParsedQuery> body = f.Parse(
      "SELECT emp.a0 FROM emp WHERE emp.a0 IN "
      "(SELECT DISTINCT dept.a0 FROM dept)");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_EQ(f.Render(*body),
            "PROJECT[emp.a0](SUBQUERY[emp.a0 in dept.a0](GET[emp], "
            "DISTINCT(GET[dept])))");
}

TEST(Sql, HavingBecomesPostAggregateSelect) {
  Fixture f;
  StatusOr<ParsedQuery> on_count = f.Parse(
      "SELECT emp.a1, COUNT(*) FROM emp GROUP BY emp.a1 "
      "HAVING COUNT(*) > 20");
  ASSERT_TRUE(on_count.ok()) << on_count.status().ToString();
  EXPECT_EQ(f.Render(*on_count),
            "SELECT[count(*) > 20](AGGREGATE[emp.a1 -> count count(*)]("
            "GET[emp]))");

  StatusOr<ParsedQuery> on_attr = f.Parse(
      "SELECT emp.a1, COUNT(*) FROM emp GROUP BY emp.a1 HAVING emp.a1 < 7");
  ASSERT_TRUE(on_attr.ok()) << on_attr.status().ToString();
  EXPECT_EQ(f.Render(*on_attr),
            "SELECT[emp.a1 < 7](AGGREGATE[emp.a1 -> count count(*)]("
            "GET[emp]))");
}

TEST(SqlErrors, UnknownRelationAndAttribute) {
  Fixture f;
  EXPECT_FALSE(f.Parse("SELECT * FROM ghosts").ok());
  EXPECT_FALSE(f.Parse("SELECT * FROM emp WHERE emp.zz < 3").ok());
  EXPECT_FALSE(f.Parse("SELECT dept.a0 FROM emp").ok());
}

TEST(SqlErrors, CrossProductRejected) {
  Fixture f;
  StatusOr<ParsedQuery> q = f.Parse("SELECT * FROM emp, dept");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("cross product"), std::string::npos);
}

TEST(SqlErrors, NonEquiJoinRejected) {
  Fixture f;
  EXPECT_FALSE(
      f.Parse("SELECT * FROM emp, dept WHERE emp.a1 < dept.a0").ok());
}

TEST(SqlErrors, OrderByMustBeVisible) {
  Fixture f;
  EXPECT_FALSE(f.Parse("SELECT emp.a0 FROM emp ORDER BY emp.a1").ok());
  EXPECT_TRUE(f.Parse("SELECT emp.a0 FROM emp ORDER BY emp.a0").ok());
}

TEST(SqlErrors, GroupByShape) {
  Fixture f;
  EXPECT_FALSE(f.Parse("SELECT emp.a0 FROM emp GROUP BY emp.a1").ok());
  EXPECT_FALSE(f.Parse("SELECT COUNT(*) FROM emp").ok());
}

TEST(SqlErrors, TrailingGarbage) {
  Fixture f;
  EXPECT_FALSE(f.Parse("SELECT * FROM emp banana").ok());
}

// Error Statuses carry structured detail payloads — the serving layer
// forwards them verbatim in JSON error responses, so tooling can react to
// the offending object, not just a prose message.
TEST(SqlErrors, DetailPayloads) {
  Fixture f;
  {
    StatusOr<ParsedQuery> q = f.Parse("SELECT * FROM ghosts");
    ASSERT_FALSE(q.ok());
    ASSERT_NE(q.status().FindDetail("relation"), nullptr);
    EXPECT_EQ(*q.status().FindDetail("relation"), "ghosts");
  }
  {
    StatusOr<ParsedQuery> q = f.Parse("SELECT * FROM emp WHERE emp.zz < 3");
    ASSERT_FALSE(q.ok());
    ASSERT_NE(q.status().FindDetail("attribute"), nullptr);
    EXPECT_EQ(*q.status().FindDetail("attribute"), "emp.zz");
  }
  {
    StatusOr<ParsedQuery> q = f.Parse("SELECT * FROM emp, emp");
    ASSERT_FALSE(q.ok());
    ASSERT_NE(q.status().FindDetail("relation"), nullptr);
  }
  {
    StatusOr<ParsedQuery> q = f.Parse("SELECT * FROM emp banana");
    ASSERT_FALSE(q.ok());
    ASSERT_NE(q.status().FindDetail("found"), nullptr);
    EXPECT_EQ(*q.status().FindDetail("found"), "banana");
  }
  {
    StatusOr<ParsedQuery> q = f.Parse("SELECT * FROM emp WHERE \x01");
    ASSERT_FALSE(q.ok());
    EXPECT_NE(q.status().FindDetail("position"), nullptr);
  }
  {
    // FROM is consumed as an attribute name here; the payload names it.
    StatusOr<ParsedQuery> q = f.Parse("SELECT FROM emp");
    ASSERT_FALSE(q.ok());
    EXPECT_NE(q.status().FindDetail("attribute"), nullptr);
  }
}

TEST(SqlErrors, RightJoinRejectedWithStructuredPayload) {
  Fixture f;
  StatusOr<ParsedQuery> q =
      f.Parse("SELECT * FROM emp RIGHT JOIN dept ON emp.a1 = dept.a0");
  ASSERT_FALSE(q.ok());
  ASSERT_NE(q.status().FindDetail("expected"), nullptr);
  EXPECT_EQ(*q.status().FindDetail("expected"), "LEFT");
  ASSERT_NE(q.status().FindDetail("found"), nullptr);
  EXPECT_EQ(*q.status().FindDetail("found"), "RIGHT");
  ASSERT_NE(q.status().FindDetail("position"), nullptr);
  EXPECT_EQ(*q.status().FindDetail("position"), "18");

  StatusOr<ParsedQuery> full =
      f.Parse("SELECT * FROM emp FULL JOIN dept ON emp.a1 = dept.a0");
  ASSERT_FALSE(full.ok());
  ASSERT_NE(full.status().FindDetail("found"), nullptr);
  EXPECT_EQ(*full.status().FindDetail("found"), "FULL");
}

TEST(SqlErrors, SubqueryDepthLimit) {
  Fixture f;
  // Three levels of nesting are supported...
  EXPECT_TRUE(f.Parse(
                   "SELECT * FROM emp WHERE EXISTS (SELECT * FROM dept WHERE "
                   "dept.a0 = emp.a1 AND EXISTS (SELECT * FROM emp WHERE "
                   "emp.a1 = dept.a1 AND EXISTS (SELECT * FROM dept WHERE "
                   "dept.a0 = emp.a2)))")
                  .ok());
  // ...the fourth is rejected with a structured payload.
  StatusOr<ParsedQuery> q = f.Parse(
      "SELECT * FROM emp WHERE EXISTS (SELECT * FROM dept WHERE "
      "dept.a0 = emp.a1 AND EXISTS (SELECT * FROM emp WHERE "
      "emp.a1 = dept.a1 AND EXISTS (SELECT * FROM dept WHERE "
      "dept.a0 = emp.a2 AND EXISTS (SELECT * FROM emp WHERE "
      "emp.a1 = dept.a1))))");
  ASSERT_FALSE(q.ok());
  ASSERT_NE(q.status().FindDetail("expected"), nullptr);
  EXPECT_EQ(*q.status().FindDetail("expected"), "subquery depth <= 3");
  ASSERT_NE(q.status().FindDetail("found"), nullptr);
  EXPECT_EQ(*q.status().FindDetail("found"), "subquery depth 4");
  EXPECT_NE(q.status().FindDetail("position"), nullptr);
}

TEST(SqlErrors, SubqueryShapeRules) {
  Fixture f;
  // IN bodies must be uncorrelated with exactly one select-list attribute.
  EXPECT_FALSE(f.Parse("SELECT * FROM emp WHERE emp.a0 IN "
                       "(SELECT dept.a0 FROM dept WHERE dept.a1 = emp.a2)")
                   .ok());
  EXPECT_FALSE(f.Parse("SELECT * FROM emp WHERE emp.a0 IN "
                       "(SELECT dept.a0, dept.a1 FROM dept)")
                   .ok());
  EXPECT_FALSE(
      f.Parse("SELECT * FROM emp WHERE emp.a0 IN (SELECT * FROM dept)").ok());
  // EXISTS bodies must correlate through exactly one equality.
  EXPECT_FALSE(f.Parse("SELECT * FROM emp WHERE EXISTS "
                       "(SELECT * FROM dept WHERE dept.a1 < 3)")
                   .ok());
  EXPECT_FALSE(f.Parse("SELECT * FROM emp WHERE EXISTS "
                       "(SELECT * FROM dept WHERE dept.a0 = emp.a1 AND "
                       "dept.a1 = emp.a2)")
                   .ok());
  // Subquery bodies are blocks, not full queries: no GROUP BY / HAVING /
  // ORDER BY inside.
  EXPECT_FALSE(f.Parse("SELECT * FROM emp WHERE emp.a0 IN "
                       "(SELECT dept.a0 FROM dept GROUP BY dept.a0)")
                   .ok());
  EXPECT_FALSE(f.Parse("SELECT * FROM emp WHERE emp.a0 IN "
                       "(SELECT dept.a0 FROM dept ORDER BY dept.a0)")
                   .ok());
}

TEST(SqlErrors, HavingRequiresGroupBy) {
  Fixture f;
  EXPECT_FALSE(f.Parse("SELECT * FROM emp HAVING COUNT(*) > 3").ok());
  // HAVING may only reference COUNT(*) or the grouping attribute.
  EXPECT_FALSE(f.Parse("SELECT emp.a1, COUNT(*) FROM emp GROUP BY emp.a1 "
                       "HAVING emp.a2 < 3")
                   .ok());
}

// Catalog mutators report the offending object the same way.
TEST(SqlErrors, CatalogDetailPayloads) {
  Fixture f;
  Symbol ghost = f.catalog.symbols().Intern("ghost.a0");
  Status s = f.catalog.SetDistinct(ghost, 5);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.FindDetail("attribute"), nullptr);
}

// --- query normalization (the plan cache's signature pass) ---------------

TEST(SqlNormalize, KeywordCaseAndWhitespaceFold) {
  Fixture f;
  StatusOr<std::string> a =
      NormalizeSql("select * from emp where emp.a1 < 10", f.catalog);
  StatusOr<std::string> b =
      NormalizeSql("SELECT  *  FROM emp\tWHERE emp.a1 < 10", f.catalog);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SqlNormalize, ConstantsStayInTheSignature) {
  // Constants feed selectivity estimation, so they must distinguish
  // signatures — cached plans for other constants would be wrong.
  Fixture f;
  StatusOr<std::string> a =
      NormalizeSql("SELECT * FROM emp WHERE emp.a1 < 10", f.catalog);
  StatusOr<std::string> b =
      NormalizeSql("SELECT * FROM emp WHERE emp.a1 < 11", f.catalog);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
}

TEST(SqlNormalize, CatalogSpellingsArePreserved) {
  // An identifier that collides with a keyword but names a catalog object
  // must keep its spelling (folding it would alias distinct queries).
  Fixture f;
  VOLCANO_CHECK(f.catalog.AddRelation("from", 10, 10, 1).ok());
  StatusOr<std::string> s = NormalizeSql("SELECT * FROM from", f.catalog);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(*s, "SELECT * FROM from");
}

TEST(SqlNormalize, DecisionSupportKeywordsFold) {
  // The new surface's keywords are part of the signature alphabet and fold
  // case like the old ones — two spellings of the same query must share a
  // cache entry.
  Fixture f;
  StatusOr<std::string> a = NormalizeSql(
      "SELECT DISTINCT emp.a0 FROM emp LEFT OUTER JOIN dept ON "
      "emp.a1 = dept.a0 WHERE NOT EXISTS (SELECT * FROM loc WHERE "
      "loc.a0 = dept.a1)",
      f.catalog);
  StatusOr<std::string> b = NormalizeSql(
      "select distinct emp.a0 from emp left outer join dept on "
      "emp.a1 = dept.a0 where not exists (select * from loc where "
      "loc.a0 = dept.a1)",
      f.catalog);
  ASSERT_TRUE(a.ok() && b.ok()) << a.status().ToString();
  EXPECT_EQ(*a, *b);
  EXPECT_NE(a->find("DISTINCT"), std::string::npos);
  EXPECT_NE(a->find("EXISTS"), std::string::npos);
}

TEST(SqlNormalize, DistinctTwinsNeverCollide) {
  // Regression guard for the plan cache: a DISTINCT query and its
  // non-DISTINCT twin parse to different required properties, so their
  // signatures must differ — a collision would serve a deduplicating plan
  // for a query that wants duplicates (or vice versa). Same for HAVING
  // and LEFT JOIN twins, which change the algebra itself.
  Fixture f;
  const char* twins[][2] = {
      {"SELECT DISTINCT emp.a1 FROM emp", "SELECT emp.a1 FROM emp"},
      {"SELECT emp.a1, COUNT(*) FROM emp GROUP BY emp.a1 "
       "HAVING COUNT(*) > 3",
       "SELECT emp.a1, COUNT(*) FROM emp GROUP BY emp.a1"},
      {"SELECT * FROM emp LEFT JOIN dept ON emp.a1 = dept.a0",
       "SELECT * FROM emp, dept WHERE emp.a1 = dept.a0"},
      {"SELECT emp.a0 FROM emp WHERE emp.a1 IN (SELECT dept.a0 FROM dept)",
       "SELECT emp.a0 FROM emp WHERE emp.a1 NOT IN "
       "(SELECT dept.a0 FROM dept)"},
  };
  for (const auto& t : twins) {
    StatusOr<std::string> a = NormalizeSql(t[0], f.catalog);
    StatusOr<std::string> b = NormalizeSql(t[1], f.catalog);
    ASSERT_TRUE(a.ok() && b.ok()) << t[0];
    EXPECT_NE(*a, *b) << t[0];
  }
}

TEST(SqlNormalize, LexErrorsPropagate) {
  Fixture f;
  EXPECT_FALSE(NormalizeSql("SELECT \x01 FROM emp", f.catalog).ok());
}

TEST(SqlEndToEnd, ParseOptimizeExecute) {
  Fixture f;
  StatusOr<ParsedQuery> q = f.Parse(
      "SELECT * FROM emp, dept "
      "WHERE emp.a1 = dept.a0 AND dept.a1 < 3 ORDER BY emp.a0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q->expr, q->required);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE((*plan)->props()->Covers(*q->required));

  exec::Database db = exec::GenerateDatabase(f.catalog, 61);
  std::vector<exec::Row> got = exec::ExecutePlan(**plan, *f.model, db);
  std::vector<exec::Row> want = exec::EvalLogical(*q->expr, *f.model, db);
  exec::Schema gs = exec::PlanSchema(**plan, *f.model, db);
  exec::Schema ws = exec::LogicalSchema(*q->expr, *f.model, db);
  EXPECT_TRUE(
      exec::SameMultiset(exec::ReorderToSchema(got, gs, ws), want));
}

TEST(SqlEndToEnd, GroupByQueryRuns) {
  Fixture f;
  StatusOr<ParsedQuery> q = f.Parse(
      "SELECT emp.a2, COUNT(*) FROM emp GROUP BY emp.a2 ORDER BY emp.a2");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q->expr, q->required);
  ASSERT_TRUE(plan.ok());

  exec::Database db = exec::GenerateDatabase(f.catalog, 67);
  std::vector<exec::Row> rows = exec::ExecutePlan(**plan, *f.model, db);
  EXPECT_LE(rows.size(), 10u);  // at most distinct(emp.a2) groups
  EXPECT_TRUE(exec::IsSortedBy(rows, {0}));
  int64_t total = 0;
  for (const auto& row : rows) total += row[1];
  EXPECT_EQ(total, 500);
}

}  // namespace
}  // namespace volcano::rel
