// Trace-layer tests: the TraceLog in-memory sink, per-rule metrics, the
// Memo::Reset lifecycle, and a golden-file diff of JsonTraceSink output for
// a small deterministic query (the format `vopt --trace=FILE` writes).
//
// Regenerate the golden fixture after an intentional format change with:
//   VOLCANO_REGEN_GOLDEN=1 ./build/tests/trace_test
// (run from the repository root; the test writes/reads
// tests/golden/trace_small.jsonl relative to the working directory, which
// gtest_discover_tests pins to the source root).

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "relational/rel_model.h"
#include "relational/sql.h"
#include "search/memo.h"
#include "search/optimizer.h"
#include "search/search_config.h"
#include "search/trace_io.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace volcano {
namespace {

using rel::Catalog;
using rel::RelModel;

constexpr char kGoldenPath[] = "tests/golden/trace_small.jsonl";

// Same schema as vopt's built-in demo catalog, so the golden trace matches
// what `vopt --trace=- "<kQuery>"` prints.
struct Fixture {
  Fixture() {
    VOLCANO_CHECK(catalog.AddRelation("emp", 2000, 100, 3).ok());
    VOLCANO_CHECK(catalog.AddRelation("dept", 50, 100, 2).ok());
    VOLCANO_CHECK(catalog
                      .SetSortedOn(catalog.symbols().Lookup("emp"),
                                   {catalog.symbols().Lookup("emp.a1")})
                      .ok());
    model = std::make_unique<RelModel>(catalog);
  }

  rel::ParsedQuery Parse(const char* sql) {
    StatusOr<rel::ParsedQuery> parsed =
        rel::ParseSql(sql, *model, catalog.symbols());
    VOLCANO_CHECK(parsed.ok());
    return std::move(*parsed);
  }

  Catalog catalog;
  std::unique_ptr<RelModel> model;
};

// ORDER BY forces enforcer events; the join gives rule-firing and
// winner-improvement events.
constexpr char kQuery[] =
    "SELECT * FROM emp, dept WHERE emp.a1 = dept.a1 ORDER BY emp.a2";

#if VOLCANO_TRACE_COMPILED_IN

TEST(Trace, LogCapturesSearchLifecycle) {
  Fixture f;
  TraceLog log;
  SearchOptions options;
  options.trace = &log;

  rel::ParsedQuery q = f.Parse(kQuery);
  Optimizer opt(*f.model, SearchConfig::FromOptions(options).value());
  StatusOr<PlanPtr> plan = opt.Optimize(*q.expr, q.required);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  const SearchStats& stats = opt.stats();
  // Structural events line up with the engine's own counters.
  EXPECT_EQ(log.CountOf(TraceEventKind::kGroupCreated), stats.groups_created);
  EXPECT_EQ(log.CountOf(TraceEventKind::kMExprCreated), stats.mexprs_created);
  EXPECT_GT(log.CountOf(TraceEventKind::kRuleFired), 0u);
  EXPECT_GT(log.CountOf(TraceEventKind::kAlgorithmPursued), 0u);
  EXPECT_GT(log.CountOf(TraceEventKind::kEnforcerPursued), 0u)
      << "ORDER BY query should pursue the sort enforcer";
  EXPECT_GT(log.CountOf(TraceEventKind::kWinnerInstalled), 0u);
  EXPECT_EQ(log.CountOf(TraceEventKind::kBudgetTrip), 0u);

  for (const TraceLog::Entry& e : log.entries()) {
    // Borrowed pointers are nulled at capture; owned copies carry the text.
    EXPECT_EQ(e.event.rule, nullptr);
    EXPECT_EQ(e.event.detail, nullptr);
    switch (e.event.kind) {
      case TraceEventKind::kRuleFired:
      case TraceEventKind::kAlgorithmPursued:
      case TraceEventKind::kEnforcerPursued:
        EXPECT_FALSE(e.rule.empty());
        break;
      case TraceEventKind::kMExprCreated:
        EXPECT_FALSE(e.detail.empty()) << "operator name missing";
        break;
      case TraceEventKind::kWinnerInstalled:
      case TraceEventKind::kWinnerImproved:
        EXPECT_GT(e.event.cost, 0.0);
        break;
      default:
        break;
    }
  }
}

TEST(Trace, MetricsCountRuleWorkAndWinners) {
  Fixture f;
  SearchOptions options;
  options.collect_phase_timing = true;

  rel::ParsedQuery q = f.Parse(kQuery);
  Optimizer opt(*f.model, SearchConfig::FromOptions(options).value());
  ASSERT_TRUE(opt.Optimize(*q.expr, q.required).ok());

  const SearchMetrics& m = opt.metrics();
  uint64_t impl_fired = 0, winners = 0;
  for (const RuleCounters& rc : m.implementations) {
    impl_fired += rc.fired;
    winners += rc.winners;
    EXPECT_LE(rc.succeeded, rc.fired) << rc.name;
  }
  for (const RuleCounters& rc : m.enforcers) winners += rc.winners;
  EXPECT_GT(impl_fired, 0u);
  EXPECT_GT(winners, 0u) << "final plan steps should credit their rules";

  ASSERT_TRUE(m.phases.enabled);
  EXPECT_GT(m.phases.total_seconds, 0.0);
  // Explore under pursue accrues to pursue, so the parts never exceed the
  // whole (the "other" residue in MetricsToJson stays non-negative).
  EXPECT_LE(m.phases.explore_seconds + m.phases.pursue_seconds,
            m.phases.total_seconds + 1e-9);

  std::string json = MetricsToJson(m);
  EXPECT_NE(json.find("\"implementations\""), std::string::npos);
  EXPECT_NE(json.find("\"winners\""), std::string::npos);
}

TEST(Trace, GoldenJsonLines) {
  Fixture f;
  std::ostringstream out;
  JsonTraceSink sink(out);
  SearchOptions options;
  options.trace = &sink;

  rel::ParsedQuery q = f.Parse(kQuery);
  Optimizer opt(*f.model, SearchConfig::FromOptions(options).value());
  ASSERT_TRUE(opt.Optimize(*q.expr, q.required).ok());
  std::string got = out.str();
  ASSERT_GT(sink.seq(), 0u);

  if (std::getenv("VOLCANO_REGEN_GOLDEN") != nullptr) {
    std::ofstream regen(kGoldenPath);
    ASSERT_TRUE(regen) << "cannot write " << kGoldenPath
                       << " (run from the repository root)";
    regen << got;
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in) << "missing " << kGoldenPath
                  << " (run from the repository root, or regenerate with "
                     "VOLCANO_REGEN_GOLDEN=1)";
  std::stringstream want;
  want << in.rdbuf();

  // Compare line-by-line so a drift reports the first diverging event, not
  // a one-line wall of JSON.
  std::istringstream got_lines(got), want_lines(want.str());
  std::string got_line, want_line;
  size_t lineno = 0;
  while (std::getline(want_lines, want_line)) {
    ++lineno;
    ASSERT_TRUE(std::getline(got_lines, got_line))
        << "trace ended early at line " << lineno << "; expected: "
        << want_line;
    EXPECT_EQ(got_line, want_line) << "first divergence at line " << lineno;
    if (got_line != want_line) break;
  }
  if (got_line == want_line) {
    EXPECT_FALSE(std::getline(got_lines, got_line))
        << "extra trace line after golden ended: " << got_line;
  }
}

#endif  // VOLCANO_TRACE_COMPILED_IN

TEST(Trace, NullSinkIsFreeAndSafe) {
  // With no sink installed the macro must not evaluate its event argument.
  Fixture f;
  rel::ParsedQuery q = f.Parse(kQuery);
  Optimizer opt(*f.model);  // default options: options.trace == nullptr
  StatusOr<PlanPtr> plan = opt.Optimize(*q.expr, q.required);
  ASSERT_TRUE(plan.ok());

  int evaluations = 0;
  TraceSink* no_sink = nullptr;
  (void)no_sink;  // the macro discards its arguments when compiled out
  VOLCANO_TRACE(no_sink, [&] {
    ++evaluations;
    return TraceEvent{.kind = TraceEventKind::kGroupCreated};
  }());
#if VOLCANO_TRACE_COMPILED_IN
  EXPECT_EQ(evaluations, 0) << "event built despite null sink";
#else
  EXPECT_EQ(evaluations, 0) << "event built despite tracing compiled out";
#endif
}

TEST(Trace, MemoResetAllowsReuse) {
  Fixture f;
  TraceLog log;
  Memo memo(*f.model);
  memo.set_trace(&log);

  ExprPtr q1 = f.model->Join(f.model->Get("emp"), f.model->Get("dept"),
                             f.catalog.symbols().Lookup("emp.a1"),
                             f.catalog.symbols().Lookup("dept.a1"));
  memo.InsertQuery(*q1);
  size_t groups_before = memo.num_groups();
  ASSERT_GT(groups_before, 0u);

  memo.Reset();
  EXPECT_EQ(memo.num_groups(), 0u);
  EXPECT_EQ(memo.num_exprs(), 0u);

  // Re-inserting the same query must rebuild from scratch — identical shape,
  // no duplicate-detection hits against pre-Reset state.
  GroupId root = memo.InsertQuery(*q1);
  EXPECT_EQ(memo.num_groups(), groups_before);
  EXPECT_EQ(memo.group(memo.Find(root)).exprs().size(), 1u);
}

}  // namespace
}  // namespace volcano
