// AGGREGATE (GROUP BY + COUNT) and UNION tests: property derivation,
// algorithm choice (streaming sort-aggregation is the second consumer of
// interesting orders beside merge join), the select-through-aggregate
// transformation, and execution against the reference evaluator.

#include <gtest/gtest.h>

#include "exec/datagen.h"
#include "exec/plan_exec.h"
#include "relational/rel_plan_cost.h"
#include "search/optimizer.h"

namespace volcano {
namespace {

struct Fixture {
  explicit Fixture(bool sorted_base = false) {
    VOLCANO_CHECK(catalog.AddRelation("T", 4000, 100, 2, {80, 4000}).ok());
    VOLCANO_CHECK(catalog.AddRelation("U", 1000, 100, 2, {80, 1000}).ok());
    cnt = catalog.symbols().Intern("cnt");
    if (sorted_base) {
      VOLCANO_CHECK(catalog
                        .SetSortedOn(catalog.symbols().Lookup("T"),
                                     {catalog.symbols().Lookup("T.a0")})
                        .ok());
    }
    model = std::make_unique<rel::RelModel>(catalog);
  }
  Symbol Attr(const char* n) { return catalog.symbols().Lookup(n); }

  rel::Catalog catalog;
  Symbol cnt;
  std::unique_ptr<rel::RelModel> model;
};

TEST(Aggregate, LogicalPropsAreGroupCount) {
  Fixture f;
  Memo memo(*f.model);
  ExprPtr q = f.model->Aggregate(f.model->Get("T"), f.Attr("T.a0"), f.cnt);
  const auto& p = rel::AsRel(*memo.LogicalOf(memo.InsertQuery(*q)));
  EXPECT_DOUBLE_EQ(p.cardinality(), 80);  // one row per group
  EXPECT_TRUE(p.HasAttr(f.Attr("T.a0")));
  EXPECT_TRUE(p.HasAttr(f.cnt));
  EXPECT_FALSE(p.HasAttr(f.Attr("T.a1")));
}

TEST(Aggregate, UnsortedInputPicksHashAggregate) {
  Fixture f(/*sorted_base=*/false);
  ExprPtr q = f.model->Aggregate(f.model->Get("T"), f.Attr("T.a0"), f.cnt);
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op(), f.model->ops().hash_aggregate);
}

TEST(Aggregate, SortedBasePicksStreamingSortAggregate) {
  Fixture f(/*sorted_base=*/true);
  ExprPtr q = f.model->Aggregate(f.model->Get("T"), f.Attr("T.a0"), f.cnt);
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op(), f.model->ops().sort_aggregate);
  EXPECT_EQ((*plan)->input(0)->op(), f.model->ops().file_scan);
}

TEST(Aggregate, OrderByGroupAttrExploitsSortAggregateOrder) {
  // SORT_AGGREGATE delivers sorted(group attr): with an ORDER BY on the
  // grouping attribute no extra sort may appear above it.
  Fixture f(/*sorted_base=*/true);
  ExprPtr q = f.model->Aggregate(f.model->Get("T"), f.Attr("T.a0"), f.cnt);
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan =
      opt.Optimize(*q, f.model->Sorted({f.Attr("T.a0")}));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op(), f.model->ops().sort_aggregate);
}

TEST(Aggregate, SelectThroughAggregateImprovesPlan) {
  // SELECT on the grouping attribute above AGGREGATE: pushing it below the
  // aggregation shrinks the aggregated input.
  Fixture f;
  ExprPtr agg = f.model->Aggregate(f.model->Get("T"), f.Attr("T.a0"), f.cnt);
  ExprPtr q = f.model->Select(agg, f.Attr("T.a0"), rel::CmpOp::kLess, 8,
                              0.1);

  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, nullptr);
  ASSERT_TRUE(plan.ok());

  rel::RelModelOptions no_push;
  no_push.enable_select_through_aggregate = false;
  rel::RelModel frozen(f.catalog, no_push);
  ExprPtr agg2 = frozen.Aggregate(frozen.Get("T"), f.Attr("T.a0"), f.cnt);
  ExprPtr q2 = frozen.Select(agg2, f.Attr("T.a0"), rel::CmpOp::kLess, 8,
                             0.1);
  Optimizer frozen_opt(frozen);
  StatusOr<PlanPtr> frozen_plan = frozen_opt.Optimize(*q2, nullptr);
  ASSERT_TRUE(frozen_plan.ok());

  EXPECT_LT(f.model->cost_model().Total((*plan)->cost()),
            frozen.cost_model().Total((*frozen_plan)->cost()));
}

TEST(Aggregate, SelectOnCountColumnDoesNotMove) {
  // The predicate references the COUNT output: the condition code must veto
  // the transformation (it would change semantics).
  Fixture f;
  ExprPtr agg = f.model->Aggregate(f.model->Get("T"), f.Attr("T.a0"), f.cnt);
  ExprPtr q = f.model->Select(agg, f.cnt, rel::CmpOp::kGreater, 10, 0.5);
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, nullptr);
  ASSERT_TRUE(plan.ok());
  // The filter stays on top of the aggregation.
  EXPECT_EQ((*plan)->op(), f.model->ops().filter);
}

TEST(Aggregate, ExecutionMatchesReference) {
  for (bool sorted : {false, true}) {
    Fixture f(sorted);
    ExprPtr q = f.model->Aggregate(
        f.model->Select(f.model->Get("T"), f.Attr("T.a1"), rel::CmpOp::kLess,
                        2000, 0.5),
        f.Attr("T.a0"), f.cnt);
    Optimizer opt(*f.model);
    StatusOr<PlanPtr> plan = opt.Optimize(*q, nullptr);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(rel::ValidatePlan(**plan, *f.model).ok());

    exec::Database db = exec::GenerateDatabase(f.catalog, 41);
    std::vector<exec::Row> got = exec::ExecutePlan(**plan, *f.model, db);
    std::vector<exec::Row> want = exec::EvalLogical(*q, *f.model, db);
    EXPECT_TRUE(exec::SameMultiset(got, want)) << "sorted=" << sorted;
    EXPECT_FALSE(want.empty());
  }
}

TEST(Aggregate, SortAggregateStreamsCorrectly) {
  // Direct iterator check including group boundaries at input edges.
  Fixture f(/*sorted_base=*/true);
  ExprPtr q = f.model->Aggregate(f.model->Get("T"), f.Attr("T.a0"), f.cnt);
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, nullptr);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ((*plan)->op(), f.model->ops().sort_aggregate);

  exec::Database db = exec::GenerateDatabase(f.catalog, 43);
  std::vector<exec::Row> rows = exec::ExecutePlan(**plan, *f.model, db);
  int64_t total = 0;
  for (const auto& row : rows) total += row[1];
  EXPECT_EQ(total, 4000);  // counts add up to the input cardinality
  EXPECT_TRUE(exec::IsSortedBy(rows, {0}));
}

TEST(Union, LogicalPropsAddCardinalities) {
  Fixture f;
  Memo memo(*f.model);
  ExprPtr q = f.model->UnionAll(f.model->Get("T"), f.model->Get("U"));
  const auto& p = rel::AsRel(*memo.LogicalOf(memo.InsertQuery(*q)));
  EXPECT_DOUBLE_EQ(p.cardinality(), 5000);
}

TEST(Union, ExecutionIsBagUnion) {
  Fixture f;
  ExprPtr q = f.model->UnionAll(f.model->Get("T"), f.model->Get("U"));
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op(), f.model->ops().concat);

  exec::Database db = exec::GenerateDatabase(f.catalog, 47);
  std::vector<exec::Row> got = exec::ExecutePlan(**plan, *f.model, db);
  EXPECT_EQ(got.size(), 5000u);  // duplicates preserved
  std::vector<exec::Row> want = exec::EvalLogical(*q, *f.model, db);
  EXPECT_TRUE(exec::SameMultiset(got, want));
}

TEST(Union, OrderByRequiresSortOnTop) {
  Fixture f;
  ExprPtr q = f.model->UnionAll(f.model->Get("T"), f.model->Get("U"));
  PhysPropsPtr required = f.model->Sorted({f.Attr("T.a0")});
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, required);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op(), f.model->ops().sort);
  EXPECT_TRUE((*plan)->props()->Covers(*required));
}

TEST(Union, CommuteIsExploredAndDeduplicated) {
  Fixture f;
  ExprPtr q = f.model->UnionAll(f.model->Get("T"), f.model->Get("U"));
  Optimizer opt(*f.model);
  ASSERT_TRUE(opt.Optimize(*q, nullptr).ok());
  GroupId root = opt.memo().Find(opt.AddQuery(*q));
  size_t live = 0;
  for (const MExpr* m : opt.memo().group(root).exprs()) {
    if (!m->dead()) ++live;
  }
  EXPECT_EQ(live, 2u);  // UNION(T,U) and UNION(U,T), nothing more
}

}  // namespace
}  // namespace volcano
