// Left-deep search-space restriction via rule condition code (§1's "prune
// futile parts of the search space" requirement; §5 names the same knob in
// Starburst: "restrict the search space to left-deep trees (no composite
// inner)").

#include <gtest/gtest.h>

#include <functional>

#include "relational/query_gen.h"
#include "search/optimizer.h"

namespace volcano {
namespace {

rel::RelModelOptions LeftDeep() {
  rel::RelModelOptions opts;
  opts.left_deep_only = true;
  return opts;
}

/// True if no join algorithm's right input is itself a join ("no composite
/// inner"). Sorts/filters in between are transparent.
bool IsLeftDeep(const PlanNode& plan, const rel::RelModel& model) {
  std::function<bool(const PlanNode&)> is_join_result =
      [&](const PlanNode& node) -> bool {
    if (node.op() == model.ops().merge_join ||
        node.op() == model.ops().hash_join) {
      return true;
    }
    if (node.num_inputs() == 1) return is_join_result(*node.input(0));
    return false;
  };
  std::function<bool(const PlanNode&)> walk =
      [&](const PlanNode& node) -> bool {
    if ((node.op() == model.ops().merge_join ||
         node.op() == model.ops().hash_join) &&
        is_join_result(*node.input(1))) {
      return false;
    }
    for (const auto& in : node.inputs()) {
      if (!walk(*in)) return false;
    }
    return true;
  };
  return walk(plan);
}

TEST(LeftDeep, PlansHaveNoCompositeInner) {
  for (uint64_t seed : {1u, 3u, 5u, 7u, 9u}) {
    rel::WorkloadOptions wopts;
    wopts.num_relations = 6;
    wopts.order_by_prob = 0.5;
    rel::Workload w = rel::GenerateWorkload(wopts, seed, LeftDeep());
    Optimizer opt(*w.model);
    StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_TRUE(IsLeftDeep(**plan, *w.model)) << "seed " << seed;
  }
}

TEST(LeftDeep, NeverBeatsBushySearch) {
  // The restricted space is a subset: its optimum cannot be cheaper.
  for (uint64_t seed : {2u, 4u, 6u, 8u}) {
    rel::WorkloadOptions wopts;
    wopts.num_relations = 6;
    rel::Workload bushy_w = rel::GenerateWorkload(wopts, seed);
    Optimizer bushy(*bushy_w.model);
    StatusOr<PlanPtr> pb = bushy.Optimize(*bushy_w.query, bushy_w.required);
    ASSERT_TRUE(pb.ok());

    rel::Workload ld_w = rel::GenerateWorkload(wopts, seed, LeftDeep());
    Optimizer ld(*ld_w.model);
    StatusOr<PlanPtr> pl = ld.Optimize(*ld_w.query, ld_w.required);
    ASSERT_TRUE(pl.ok());

    double bushy_cost = bushy_w.model->cost_model().Total((*pb)->cost());
    double ld_cost = ld_w.model->cost_model().Total((*pl)->cost());
    EXPECT_GE(ld_cost, bushy_cost * (1 - 1e-9)) << "seed " << seed;
  }
}

TEST(LeftDeep, ReducesImplementationEffort) {
  rel::WorkloadOptions wopts;
  wopts.num_relations = 7;
  wopts.join_graph = rel::WorkloadOptions::JoinGraph::kStar;

  rel::Workload bushy_w = rel::GenerateWorkload(wopts, 42);
  Optimizer bushy(*bushy_w.model);
  ASSERT_TRUE(bushy.Optimize(*bushy_w.query, bushy_w.required).ok());

  rel::Workload ld_w = rel::GenerateWorkload(wopts, 42, LeftDeep());
  Optimizer ld(*ld_w.model);
  ASSERT_TRUE(ld.Optimize(*ld_w.query, ld_w.required).ok());

  // Same logical exploration, fewer algorithm moves pursued.
  EXPECT_LT(ld.stats().algorithm_moves, bushy.stats().algorithm_moves);
}

}  // namespace
}  // namespace volcano
