// Pattern and binding tests: the rule pattern language, multi-level match
// enumeration over the memo (all binding combinations), directed exploration
// (only pattern-required input classes are expanded), and DOT export.

#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "relational/rel_model.h"
#include "search/dot.h"
#include "search/optimizer.h"

namespace volcano {
namespace {

using rel::Catalog;
using rel::RelModel;

TEST(Pattern, ShapeAccessors) {
  OperatorRegistry reg;
  OperatorId join = reg.RegisterLogical("JOIN", 2);
  Pattern p = Pattern::Op(
      join, {Pattern::Op(join, {Pattern::Any(), Pattern::Any()}),
             Pattern::Any()});
  EXPECT_FALSE(p.is_any());
  EXPECT_EQ(p.op(), join);
  EXPECT_EQ(p.NumLeaves(), 3);
  EXPECT_EQ(p.NumOpNodes(), 2);
  EXPECT_EQ(p.ToString(reg), "JOIN(JOIN(?, ?), ?)");
  EXPECT_EQ(Pattern::Any().NumLeaves(), 1);
  EXPECT_EQ(Pattern::Any().NumOpNodes(), 0);
}

struct Fixture {
  Fixture() {
    VOLCANO_CHECK(catalog.AddRelation("A", 1000, 100, 2).ok());
    VOLCANO_CHECK(catalog.AddRelation("B", 2000, 100, 2).ok());
    VOLCANO_CHECK(catalog.AddRelation("C", 3000, 100, 2).ok());
    model = std::make_unique<RelModel>(catalog);
  }
  Symbol Attr(const char* n) { return catalog.symbols().Lookup(n); }
  Catalog catalog;
  std::unique_ptr<RelModel> model;
};

TEST(Binding, MultiLevelPatternsEnumerateAllCombinations) {
  // After exploration, the inner class of JOIN(JOIN(A,B),C) holds both
  // JOIN(A,B) and JOIN(B,A); the associativity pattern must have had access
  // to every (outer, inner) combination. We verify through the memo
  // contents: the full bushy space for a 3-chain is reachable, which needs
  // both inner bindings.
  Fixture f;
  ExprPtr inner = f.model->Join(f.model->Get("A"), f.model->Get("B"),
                                f.Attr("A.a0"), f.Attr("B.a0"));
  ExprPtr q = f.model->Join(inner, f.model->Get("C"), f.Attr("B.a1"),
                            f.Attr("C.a0"));
  Optimizer opt(*f.model);
  ASSERT_TRUE(opt.Optimize(*q, nullptr).ok());

  GroupId root = opt.memo().Find(opt.AddQuery(*q));
  size_t live = 0;
  for (const MExpr* m : opt.memo().group(root).exprs()) {
    if (!m->dead()) ++live;
  }
  // {AB|C, C|AB, A|BC, BC|A}: requires matching the two-level pattern
  // against both commuted variants of the inner class.
  EXPECT_EQ(live, 4u);
}

TEST(Binding, DirectedExplorationSkipsUnneededClasses) {
  // A plain GET query triggers no transformation patterns: its class is
  // never expanded beyond the original expression and no new classes appear.
  Fixture f;
  Optimizer opt(*f.model);
  ASSERT_TRUE(opt.Optimize(*f.model->Get("A"), nullptr).ok());
  EXPECT_EQ(opt.memo().num_groups(), 1u);
  EXPECT_EQ(opt.memo().num_exprs(), 1u);
  EXPECT_EQ(opt.stats().transformations_matched, 0u);
}

TEST(Dot, PlanExportContainsAllOperators) {
  Fixture f;
  ExprPtr q = f.model->Join(f.model->Get("A"), f.model->Get("B"),
                            f.Attr("A.a0"), f.Attr("B.a0"));
  Optimizer opt(*f.model);
  StatusOr<PlanPtr> plan =
      opt.Optimize(*q, f.model->Sorted({f.Attr("A.a0")}));
  ASSERT_TRUE(plan.ok());
  std::string dot = PlanToDot(**plan, f.model->registry(),
                              f.model->cost_model());
  EXPECT_NE(dot.find("digraph plan"), std::string::npos);
  EXPECT_NE(dot.find("FILE_SCAN"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Structure: N nodes, N-1 edges for a tree.
  size_t nodes = 0, edges = 0, pos = 0;
  while ((pos = dot.find("shape=box", pos)) != std::string::npos) {
    ++nodes;
    pos += 1;
  }
  pos = 0;
  while ((pos = dot.find("->", pos)) != std::string::npos) {
    ++edges;
    pos += 1;
  }
  EXPECT_EQ(nodes, (*plan)->TreeSize());
  EXPECT_EQ(edges, nodes - 1);
}

TEST(Dot, MemoExportListsClasses) {
  Fixture f;
  ExprPtr q = f.model->Join(f.model->Get("A"), f.model->Get("B"),
                            f.Attr("A.a0"), f.Attr("B.a0"));
  Optimizer opt(*f.model);
  ASSERT_TRUE(opt.Optimize(*q, nullptr).ok());
  std::string dot = MemoToDot(opt.memo(), f.model->registry());
  EXPECT_NE(dot.find("digraph memo"), std::string::npos);
  EXPECT_NE(dot.find("class 0"), std::string::npos);
  EXPECT_NE(dot.find("JOIN"), std::string::npos);
  EXPECT_NE(dot.find("GET"), std::string::npos);
}

}  // namespace
}  // namespace volcano
