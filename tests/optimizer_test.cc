// Search engine tests against the relational model: exhaustive exploration
// of the logical space, optimality invariants across search options,
// physical-property goals, enforcer placement (excluding property vectors),
// failure memoization, and resource caps.

#include <gtest/gtest.h>

#include <cmath>

#include "relational/catalog.h"
#include "relational/query_gen.h"
#include "relational/rel_plan_cost.h"
#include "search/optimizer.h"
#include "search/search_config.h"

namespace volcano {
namespace {

using rel::Catalog;
using rel::RelModel;

/// A chain query A -x- B -y- C -z- D ... with one join predicate per edge.
struct Chain {
  explicit Chain(int n, rel::RelModelOptions opts = {}) {
    for (int i = 0; i < n; ++i) {
      VOLCANO_CHECK(catalog
                        .AddRelation("R" + std::to_string(i),
                                     1000.0 * (i + 1), 100, 2)
                        .ok());
    }
    model = std::make_unique<RelModel>(catalog, opts);
    expr = model->Get("R0");
    for (int i = 1; i < n; ++i) {
      expr = model->Join(expr, model->Get("R" + std::to_string(i)),
                         Attr(i - 1, 1), Attr(i, 0));
    }
  }

  Symbol Attr(int rel, int idx) {
    Symbol s = catalog.symbols().Lookup("R" + std::to_string(rel) + ".a" +
                                        std::to_string(idx));
    VOLCANO_CHECK(s.valid());
    return s;
  }

  Catalog catalog;
  std::unique_ptr<RelModel> model;
  ExprPtr expr;
};

size_t LiveExprsInGroup(const Memo& memo, GroupId g) {
  size_t n = 0;
  for (const MExpr* m : memo.group(g).exprs()) {
    if (!m->dead()) ++n;
  }
  return n;
}

TEST(Exploration, ChainOfThreeEnumeratesAllJoinOrders) {
  // For A-B-C, the cross-product-free bushy space of the root class is
  // {(AB)C, C(AB), A(BC), (BC)A}: four expressions.
  Chain c(3);
  Optimizer opt(*c.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*c.expr, nullptr);
  ASSERT_TRUE(plan.ok());
  GroupId root = opt.memo().Find(opt.AddQuery(*c.expr));
  EXPECT_EQ(LiveExprsInGroup(opt.memo(), root), 4u);
}

TEST(Exploration, ChainOfFourEnumeratesAllJoinOrders) {
  // For A-B-C-D the root class holds {A|BCD, AB|CD, ABC|D} x commute = 6.
  Chain c(4);
  Optimizer opt(*c.model);
  ASSERT_TRUE(opt.Optimize(*c.expr, nullptr).ok());
  GroupId root = opt.memo().Find(opt.AddQuery(*c.expr));
  EXPECT_EQ(LiveExprsInGroup(opt.memo(), root), 6u);
}

TEST(Exploration, NoCrossProductClassesForChains) {
  // Connected-subgraph classes only: for a chain of n relations the class
  // count is n leaves + n(n-1)/2 contiguous join intervals.
  for (int n : {2, 3, 4, 5}) {
    Chain c(n);
    Optimizer opt(*c.model);
    ASSERT_TRUE(opt.Optimize(*c.expr, nullptr).ok());
    EXPECT_EQ(opt.memo().num_groups(),
              static_cast<size_t>(n + n * (n - 1) / 2))
        << "chain length " << n;
  }
}

TEST(Optimality, InvariantAcrossSearchOptions) {
  // Branch-and-bound pruning and memoization are pure accelerations: they
  // must never change the cost of the returned plan.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    rel::WorkloadOptions wopts;
    wopts.num_relations = 5;
    wopts.order_by_prob = 0.5;
    rel::Workload w = rel::GenerateWorkload(wopts, seed);
    const CostModel& cm = w.model->cost_model();

    SearchOptions base;
    Optimizer ref(*w.model, SearchConfig::FromOptions(base).value());
    StatusOr<PlanPtr> ref_plan = ref.Optimize(*w.query, w.required);
    ASSERT_TRUE(ref_plan.ok());
    double ref_cost = cm.Total((*ref_plan)->cost());

    SearchOptions no_bnb;
    no_bnb.branch_and_bound = false;
    Optimizer a(*w.model, SearchConfig::FromOptions(no_bnb).value());
    StatusOr<PlanPtr> pa = a.Optimize(*w.query, w.required);
    ASSERT_TRUE(pa.ok());
    EXPECT_NEAR(cm.Total((*pa)->cost()), ref_cost, 1e-9 * ref_cost);

    SearchOptions no_fail_memo;
    no_fail_memo.memoize_failures = false;
    Optimizer b(*w.model, SearchConfig::FromOptions(no_fail_memo).value());
    StatusOr<PlanPtr> pb = b.Optimize(*w.query, w.required);
    ASSERT_TRUE(pb.ok());
    EXPECT_NEAR(cm.Total((*pb)->cost()), ref_cost, 1e-9 * ref_cost);
  }
}

TEST(Optimality, ReportedCostMatchesIndependentRecosting) {
  for (uint64_t seed : {10u, 20u, 30u, 40u, 50u, 60u}) {
    rel::WorkloadOptions wopts;
    wopts.num_relations = 4;
    wopts.order_by_prob = 0.5;
    rel::Workload w = rel::GenerateWorkload(wopts, seed);
    Optimizer opt(*w.model);
    StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
    ASSERT_TRUE(plan.ok());
    const CostModel& cm = w.model->cost_model();
    double reported = cm.Total((*plan)->cost());
    double recosted = cm.Total(rel::RecostPlan(**plan, *w.model));
    EXPECT_NEAR(reported, recosted, 1e-9 * std::max(1.0, reported));
    EXPECT_TRUE(rel::ValidatePlan(**plan, *w.model).ok());
  }
}

TEST(Optimality, BruteForceOracleTwoRelations) {
  // Independent oracle for JOIN(SELECT(A), SELECT(B)): enumerate every
  // legal physical plan by hand and check the optimizer returns the
  // cheapest.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("A", 3000, 100, 2).ok());
  ASSERT_TRUE(catalog.AddRelation("B", 5000, 100, 2).ok());
  RelModel model(catalog);
  Symbol a0 = catalog.symbols().Lookup("A.a0");
  Symbol b0 = catalog.symbols().Lookup("B.a0");
  ExprPtr q = model.Join(model.Get("A"), model.Get("B"), a0, b0);

  Optimizer opt(model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, nullptr);
  ASSERT_TRUE(plan.ok());
  double got = model.cost_model().Total((*plan)->cost());

  // Hand enumeration under the same cost model.
  Memo memo(model);
  const auto& lp_a = rel::AsRel(*memo.LogicalOf(memo.InsertQuery(*model.Get("A"))));
  const auto& lp_b = rel::AsRel(*memo.LogicalOf(memo.InsertQuery(*model.Get("B"))));
  const auto& lp_j = rel::AsRel(*memo.LogicalOf(memo.InsertQuery(*q)));
  const rel::RelCostModel& cm = model.rel_cost();
  auto total = [&](const Cost& c) { return model.cost_model().Total(c); };

  double scan_a = total(cm.FileScan(lp_a));
  double scan_b = total(cm.FileScan(lp_b));
  double best = std::numeric_limits<double>::infinity();
  // hash join, both directions
  best = std::min(best, scan_a + scan_b + total(cm.HashJoin(lp_a, lp_b, lp_j)));
  best = std::min(best, scan_a + scan_b + total(cm.HashJoin(lp_b, lp_a, lp_j)));
  // merge join with explicit sorts, both directions
  double sorts = total(cm.Sort(lp_a)) + total(cm.Sort(lp_b));
  best = std::min(best,
                  scan_a + scan_b + sorts + total(cm.MergeJoin(lp_a, lp_b, lp_j)));
  best = std::min(best,
                  scan_a + scan_b + sorts + total(cm.MergeJoin(lp_b, lp_a, lp_j)));

  EXPECT_NEAR(got, best, 1e-9 * best);
}

TEST(PhysicalProperties, SortedBaseRelationEnablesFreeMergeJoin) {
  // Both inputs stored sorted on their join attributes: merge join needs no
  // sorts and beats hash join; the optimizer must find it.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("A", 4000, 100, 2).ok());
  ASSERT_TRUE(catalog.AddRelation("B", 4000, 100, 2).ok());
  Symbol a0 = catalog.symbols().Lookup("A.a0");
  Symbol b0 = catalog.symbols().Lookup("B.a0");
  ASSERT_TRUE(catalog.SetSortedOn(catalog.symbols().Lookup("A"), {a0}).ok());
  ASSERT_TRUE(catalog.SetSortedOn(catalog.symbols().Lookup("B"), {b0}).ok());
  RelModel model(catalog);
  ExprPtr q = model.Join(model.Get("A"), model.Get("B"), a0, b0);

  Optimizer opt(model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op(), model.ops().merge_join);
  // And no sort anywhere in the plan.
  EXPECT_EQ((*plan)->input(0)->op(), model.ops().file_scan);
  EXPECT_EQ((*plan)->input(1)->op(), model.ops().file_scan);
}

TEST(PhysicalProperties, OrderByOnUnsortedBaseUsesSortOrMergeJoin) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("A", 2000, 100, 2).ok());
  ASSERT_TRUE(catalog.AddRelation("B", 2000, 100, 2).ok());
  RelModel model(catalog);
  Symbol a0 = catalog.symbols().Lookup("A.a0");
  Symbol b0 = catalog.symbols().Lookup("B.a0");
  ExprPtr q = model.Join(model.Get("A"), model.Get("B"), a0, b0);
  PhysPropsPtr required = model.Sorted({a0});

  Optimizer opt(model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, required);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE((*plan)->props()->Covers(*required));
}

TEST(PhysicalProperties, ExcludingVectorPreventsRedundantMergeJoinUnderSort) {
  // If the final result must be sorted on the join attribute, a plan of the
  // shape SORT(a) over MERGE_JOIN delivering sorted(a) is redundant: the
  // merge join already qualifies for the goal directly. The excluding
  // physical property vector must prevent it (paper, sections 2.2/3).
  for (uint64_t seed : {3u, 5u, 8u, 13u}) {
    rel::WorkloadOptions wopts;
    wopts.num_relations = 4;
    wopts.order_by_prob = 1.0;
    rel::Workload w = rel::GenerateWorkload(wopts, seed);
    Optimizer opt(*w.model);
    StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
    ASSERT_TRUE(plan.ok());

    // Walk the plan: no SORT node may sit directly on a child that already
    // delivers the sorted order.
    std::function<void(const PlanNode&)> walk = [&](const PlanNode& node) {
      if (node.op() == w.model->ops().sort) {
        EXPECT_FALSE(node.input(0)->props()->Covers(*node.props()))
            << "redundant sort over an input that already delivers "
            << node.props()->ToString();
      }
      for (const auto& in : node.inputs()) walk(*in);
    };
    walk(**plan);
  }
}

TEST(Failures, UnsatisfiableRequirementReturnsNotFound) {
  // Requiring an order on an attribute outside the result schema cannot be
  // satisfied by any algorithm or enforcer.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("A", 1000, 100, 2).ok());
  ASSERT_TRUE(catalog.AddRelation("B", 1000, 100, 2).ok());
  RelModel model(catalog);
  ExprPtr q = model.Get("A");
  PhysPropsPtr impossible =
      model.Sorted({catalog.symbols().Lookup("B.a0")});

  Optimizer opt(model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, impossible);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), Status::Code::kNotFound);
}

TEST(Failures, MemoizedFailureIsReused) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("A", 1000, 100, 2).ok());
  RelModel model(catalog);
  ExprPtr q = model.Get("A");
  // Unsatisfiable: sort on an attribute A does not have.
  SymbolTable& syms = const_cast<Catalog&>(catalog).symbols();
  PhysPropsPtr impossible = model.Sorted({syms.Intern("ghost")});

  Optimizer opt(model);
  GroupId g = opt.AddQuery(*q);
  ASSERT_FALSE(opt.OptimizeGroup(g, impossible).ok());
  SearchStats before = opt.stats();
  ASSERT_FALSE(opt.OptimizeGroup(g, impossible).ok());
  SearchStats after = opt.stats();
  EXPECT_GT(after.memo_failure_hits, before.memo_failure_hits);
}

TEST(Failures, WinnerIsReusedAcrossCalls) {
  Chain c(3);
  Optimizer opt(*c.model);
  GroupId g = opt.AddQuery(*c.expr);
  ASSERT_TRUE(opt.OptimizeGroup(g, nullptr).ok());
  SearchStats before = opt.stats();
  ASSERT_TRUE(opt.OptimizeGroup(g, nullptr).ok());
  SearchStats after = opt.stats();
  EXPECT_EQ(after.memo_winner_hits, before.memo_winner_hits + 1);
  // No new expressions were created by the second call.
  EXPECT_EQ(after.mexprs_created, before.mexprs_created);
}

TEST(Budget, MemoCapAborts) {
  // In strict mode the memo cap is a hard error; by default (anytime
  // degradation) the same trip yields an approximate plan. The full budget
  // and degradation matrix lives in budget_test.cc.
  Chain c(6);
  SearchOptions opts;
  opts.max_mexprs = 10;
  opts.degradation = SearchOptions::Degradation::kStrict;
  Optimizer opt(*c.model, SearchConfig::FromOptions(opts).value());
  StatusOr<PlanPtr> plan = opt.Optimize(*c.expr, nullptr);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), Status::Code::kResourceExhausted);

  SearchOptions anytime;
  anytime.max_mexprs = 10;
  Optimizer degraded(*c.model, SearchConfig::FromOptions(anytime).value());
  StatusOr<PlanPtr> approx = degraded.Optimize(*c.expr, nullptr);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  EXPECT_TRUE(degraded.outcome().approximate);
  EXPECT_EQ(degraded.outcome().trip, BudgetTrip::kMemoLimit);
}

TEST(Heuristics, MoveLimitNeverImprovesCost) {
  for (uint64_t seed : {7u, 17u, 27u}) {
    rel::WorkloadOptions wopts;
    wopts.num_relations = 5;
    wopts.order_by_prob = 0.5;
    rel::Workload w = rel::GenerateWorkload(wopts, seed);
    const CostModel& cm = w.model->cost_model();

    Optimizer full(*w.model);
    StatusOr<PlanPtr> pf = full.Optimize(*w.query, w.required);
    ASSERT_TRUE(pf.ok());

    SearchOptions limited;
    limited.move_limit = 2;
    Optimizer lim(*w.model, SearchConfig::FromOptions(limited).value());
    StatusOr<PlanPtr> pl = lim.Optimize(*w.query, w.required);
    if (pl.ok()) {
      EXPECT_GE(cm.Total((*pl)->cost()),
                cm.Total((*pf)->cost()) * (1.0 - 1e-9));
    }
  }
}

TEST(Heuristics, GluePropertiesNeverImprovesCost) {
  // Starburst-style optimize-then-glue can only match or lose against
  // property-directed search (the paper's section 6 argument).
  for (uint64_t seed : {2u, 12u, 22u, 32u}) {
    rel::WorkloadOptions wopts;
    wopts.num_relations = 5;
    wopts.order_by_prob = 1.0;
    rel::Workload w = rel::GenerateWorkload(wopts, seed);
    const CostModel& cm = w.model->cost_model();

    Optimizer directed(*w.model);
    StatusOr<PlanPtr> pd = directed.Optimize(*w.query, w.required);
    ASSERT_TRUE(pd.ok());

    SearchOptions glue;
    glue.glue_properties = true;
    Optimizer glued(*w.model, SearchConfig::FromOptions(glue).value());
    StatusOr<PlanPtr> pg = glued.Optimize(*w.query, w.required);
    ASSERT_TRUE(pg.ok());
    EXPECT_GE(cm.Total((*pg)->cost()),
              cm.Total((*pd)->cost()) * (1.0 - 1e-9));
  }
}

TEST(Rules, SelectPushdownFindsCheaperOrEqualPlans) {
  // Place the selection on top of the join; only the pushdown rule can move
  // it down to the base relation.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("A", 5000, 100, 2).ok());
  ASSERT_TRUE(catalog.AddRelation("B", 5000, 100, 2).ok());
  Symbol a0 = catalog.symbols().Lookup("A.a0");
  Symbol a1 = catalog.symbols().Lookup("A.a1");
  Symbol b0 = catalog.symbols().Lookup("B.a0");

  auto build = [&](const RelModel& model) {
    ExprPtr join = model.Join(model.Get("A"), model.Get("B"), a0, b0);
    return model.Select(join, a1, rel::CmpOp::kLess, 10, 0.01);
  };

  RelModel plain(catalog);
  Optimizer popt(plain);
  StatusOr<PlanPtr> pplain = popt.Optimize(*build(plain), nullptr);
  ASSERT_TRUE(pplain.ok());

  rel::RelModelOptions mo;
  mo.enable_select_pushdown = true;
  RelModel pushdown(catalog, mo);
  Optimizer dopt(pushdown);
  StatusOr<PlanPtr> ppush = dopt.Optimize(*build(pushdown), nullptr);
  ASSERT_TRUE(ppush.ok());

  double plain_cost = plain.cost_model().Total((*pplain)->cost());
  double push_cost = pushdown.cost_model().Total((*ppush)->cost());
  EXPECT_LT(push_cost, plain_cost);
}

TEST(Rules, SelectPullupTerminatesWithInversePair) {
  // Pushdown + pullup are mutual inverses; memo deduplication and the
  // in-progress marking must keep the search finite.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("A", 1000, 100, 2).ok());
  ASSERT_TRUE(catalog.AddRelation("B", 1000, 100, 2).ok());
  Symbol a0 = catalog.symbols().Lookup("A.a0");
  Symbol a1 = catalog.symbols().Lookup("A.a1");
  Symbol b0 = catalog.symbols().Lookup("B.a0");

  rel::RelModelOptions mo;
  mo.enable_select_pushdown = true;
  mo.enable_select_pullup = true;
  RelModel model(catalog, mo);
  ExprPtr join = model.Join(model.Get("A"), model.Get("B"), a0, b0);
  ExprPtr q = model.Select(join, a1, rel::CmpOp::kLess, 10, 0.1);

  Optimizer opt(model);
  StatusOr<PlanPtr> plan = opt.Optimize(*q, nullptr);
  ASSERT_TRUE(plan.ok());
}

}  // namespace
}  // namespace volcano
