// Support library tests: arena, interning, flat hash containers, small
// vectors, scratch pools, hashing, RNG, status, timer.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

#include "support/arena.h"
#include "support/flat_hash.h"
#include "support/hash.h"
#include "support/intern.h"
#include "support/rng.h"
#include "support/scratch.h"
#include "support/small_vector.h"
#include "support/status.h"
#include "support/timer.h"

namespace volcano {
namespace {

TEST(Arena, AllocatesAndAligns) {
  Arena arena;
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(8, 8);
  void* c = arena.Allocate(1, 64);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
  EXPECT_GE(arena.bytes_allocated(), 12u);
}

TEST(Arena, GrowsAcrossBlocks) {
  Arena arena(/*block_bytes=*/128);
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(64);
    std::memset(p, i, 64);  // must be writable
  }
  EXPECT_GE(arena.bytes_reserved(), 100u * 64u);
}

TEST(Arena, OversizedAllocationGetsOwnBlock) {
  Arena arena(/*block_bytes=*/64);
  void* p = arena.Allocate(10000);
  std::memset(p, 7, 10000);
  EXPECT_GE(arena.bytes_reserved(), 10000u);
}

TEST(Arena, NewConstructsObjects) {
  Arena arena;
  struct Point {
    int x, y;
  };
  Point* p = arena.New<Point>(Point{3, 4});
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

TEST(Arena, ResetRetainsFirstBlockAndReleasesOverflow) {
  Arena arena(/*block_bytes=*/128);
  arena.Allocate(100);
  size_t first = arena.bytes_reserved();
  // Force several overflow blocks.
  for (int i = 0; i < 8; ++i) arena.Allocate(100);
  EXPECT_GT(arena.bytes_reserved(), first);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // The first block survives so a reused arena doesn't re-pay allocation.
  EXPECT_EQ(arena.bytes_reserved(), first);
}

TEST(Arena, ResetOnFreshArenaIsANoOp) {
  Arena arena;
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
}

TEST(Arena, ReusableAfterReset) {
  Arena arena(/*block_bytes=*/256);
  void* first = arena.Allocate(64, 8);
  arena.Reset();
  void* again = arena.Allocate(64, 8);
  // Same rewound block, same bump pointer.
  EXPECT_EQ(first, again);
  std::memset(again, 0xab, 64);
  EXPECT_EQ(arena.bytes_allocated(), 64u);
}

TEST(Arena, AlignmentSpillAllocatesBigEnoughBlock) {
  // When bytes + alignment padding exceed the remaining space, the new block
  // must still fit the worst case (bytes + align); request sizes near the
  // block size with large alignment to exercise the spill path.
  Arena arena(/*block_bytes=*/64);
  for (int i = 0; i < 16; ++i) {
    void* p = arena.Allocate(60, 64);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
    std::memset(p, 0x5a, 60);  // ASan verifies the allocation is in bounds
  }
}

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable t;
  Symbol a = t.Intern("hello");
  Symbol b = t.Intern("hello");
  Symbol c = t.Intern("world");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(t.Name(a), "hello");
  EXPECT_EQ(t.size(), 2u);
}

TEST(SymbolTable, LookupWithoutInterning) {
  SymbolTable t;
  EXPECT_FALSE(t.Lookup("missing").valid());
  Symbol a = t.Intern("present");
  EXPECT_EQ(t.Lookup("present"), a);
  EXPECT_EQ(t.size(), 1u);  // Lookup must not create entries
}

TEST(SymbolTable, InvalidSymbolName) {
  SymbolTable t;
  EXPECT_EQ(t.Name(Symbol()), "<invalid>");
  EXPECT_FALSE(Symbol().valid());
}

TEST(Hash, Mix64Scatters) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Hash, CombineIsOrderSensitive) {
  uint64_t a = HashCombine(HashCombine(0, 1), 2);
  uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(Hash, StringHashing) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, UniformRangeBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble(2.0, 3.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(Rng, UniformCoversDomain) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
  EXPECT_EQ(s.message(), "thing");
  EXPECT_NE(s.ToString().find("NOT_FOUND"), std::string::npos);
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> v = 42;
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  StatusOr<int> e = Status::InvalidArgument("bad");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), Status::Code::kInvalidArgument);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  double ms = t.ElapsedMillis();
  EXPECT_GE(ms, 5.0);
  EXPECT_LT(ms, 5000.0);
  t.Restart();
  EXPECT_LT(t.ElapsedMillis(), 5.0);
}

TEST(FlatHashMap, InsertFindEraseChurn) {
  FlatHashMap<int, int> m;
  for (int i = 0; i < 1000; ++i) m.TryEmplace(i, i * 3);
  EXPECT_EQ(m.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    int* v = m.Find(i);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i * 3);
  }
  EXPECT_EQ(m.Find(1000), nullptr);
  // Erase every third key; backward-shift deletion must keep the rest
  // findable (no tombstone artifacts).
  for (int i = 0; i < 1000; i += 3) EXPECT_TRUE(m.Erase(i));
  for (int i = 0; i < 1000; ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(m.Find(i), nullptr);
    } else {
      ASSERT_NE(m.Find(i), nullptr);
      EXPECT_EQ(*m.Find(i), i * 3);
    }
  }
  // Reinsert over the holes.
  for (int i = 0; i < 1000; i += 3) m.TryEmplace(i, -i);
  EXPECT_EQ(m.size(), 1000u);
  EXPECT_EQ(*m.Find(999), -999);
}

TEST(FlatHashMap, TryEmplaceIsIdempotent) {
  FlatHashMap<int, int> m;
  auto [v1, fresh1] = m.TryEmplace(7, 70);
  auto [v2, fresh2] = m.TryEmplace(7, 700);
  EXPECT_TRUE(fresh1);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(*v2, 70);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMap, HeterogeneousProbesNeverMaterializeKeys) {
  // The SymbolTable pattern: keys are small ids, probes carry the hash of an
  // external representation.
  FlatHashMap<uint32_t, uint32_t> m;
  uint64_t h1 = HashString("first"), h2 = HashString("second");
  m.InsertHashed(h1, 1, 10);
  m.InsertHashed(h2, 2, 20);
  const uint32_t* v =
      m.FindHashed(h1, [](uint32_t k) { return k == 1; });
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 10u);
  EXPECT_EQ(m.FindHashed(HashString("third"), [](uint32_t) { return true; }),
            nullptr);
  EXPECT_TRUE(m.EraseHashed(h1, [](uint32_t k) { return k == 1; }));
  EXPECT_EQ(m.FindHashed(h1, [](uint32_t k) { return k == 1; }), nullptr);
  ASSERT_NE(m.FindHashed(h2, [](uint32_t k) { return k == 2; }), nullptr);
}

TEST(FlatHashSet, InsertContainsErase) {
  FlatHashSet<uint64_t> s;
  for (uint64_t i = 0; i < 500; ++i) EXPECT_TRUE(s.Insert(i * 17));
  for (uint64_t i = 0; i < 500; ++i) EXPECT_FALSE(s.Insert(i * 17));
  EXPECT_EQ(s.size(), 500u);
  EXPECT_TRUE(s.Contains(17 * 42));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_TRUE(s.Erase(17 * 42));
  EXPECT_FALSE(s.Contains(17 * 42));
  size_t seen = 0;
  s.ForEach([&](uint64_t) { ++seen; });
  EXPECT_EQ(seen, 499u);
}

TEST(SmallVector, StaysInlineThenSpills) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  v.push_back(4);
  EXPECT_FALSE(v.is_inline());
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
  v.pop_back();
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, CopyAndMovePreserveContents) {
  SmallVector<std::string, 2> a;
  a.push_back("one");
  a.push_back("two");
  a.push_back("three");  // spilled
  SmallVector<std::string, 2> b = a;
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b[2], "three");
  SmallVector<std::string, 2> c = std::move(a);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], "one");
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
  SmallVector<std::string, 2> inline_src;
  inline_src.push_back("x");
  SmallVector<std::string, 2> d = std::move(inline_src);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], "x");
}

TEST(ScratchPool, BuffersRetainCapacityAcrossLeases) {
  ScratchPool<int> pool;
  int* data = nullptr;
  {
    ScratchLease<int> lease(pool);
    for (int i = 0; i < 100; ++i) lease->push_back(i);
    data = lease->data();
  }
  EXPECT_EQ(pool.idle(), 1u);
  {
    ScratchLease<int> lease(pool);
    EXPECT_TRUE(lease->empty());
    lease->push_back(1);
    // Same heap buffer came back: capacity was retained.
    EXPECT_EQ(lease->data(), data);
    // A nested lease while one is held gets a distinct buffer.
    ScratchLease<int> nested(pool);
    nested->push_back(2);
    EXPECT_NE(nested->data(), lease->data());
  }
  EXPECT_EQ(pool.idle(), 2u);
}

TEST(SymbolTable, StringViewProbesDoNotIntern) {
  SymbolTable t;
  Symbol a = t.Intern("relation_with_a_long_name.attribute_with_a_long_name");
  size_t before = t.size();
  // Lookup of present and absent names must not grow the table.
  EXPECT_EQ(t.Lookup(std::string_view(
                "relation_with_a_long_name.attribute_with_a_long_name")),
            a);
  EXPECT_FALSE(t.Lookup("some_other_identifier").valid());
  EXPECT_EQ(t.size(), before);
  // Re-interning through a string_view of a different buffer hits the same
  // symbol.
  std::string copy = "relation_with_a_long_name.attribute_with_a_long_name";
  EXPECT_EQ(t.Intern(std::string_view(copy)), a);
  EXPECT_EQ(t.size(), before);
}

}  // namespace
}  // namespace volcano
