// Support library tests: arena, interning, hashing, RNG, status, timer.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

#include "support/arena.h"
#include "support/hash.h"
#include "support/intern.h"
#include "support/rng.h"
#include "support/status.h"
#include "support/timer.h"

namespace volcano {
namespace {

TEST(Arena, AllocatesAndAligns) {
  Arena arena;
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(8, 8);
  void* c = arena.Allocate(1, 64);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
  EXPECT_GE(arena.bytes_allocated(), 12u);
}

TEST(Arena, GrowsAcrossBlocks) {
  Arena arena(/*block_bytes=*/128);
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(64);
    std::memset(p, i, 64);  // must be writable
  }
  EXPECT_GE(arena.bytes_reserved(), 100u * 64u);
}

TEST(Arena, OversizedAllocationGetsOwnBlock) {
  Arena arena(/*block_bytes=*/64);
  void* p = arena.Allocate(10000);
  std::memset(p, 7, 10000);
  EXPECT_GE(arena.bytes_reserved(), 10000u);
}

TEST(Arena, NewConstructsObjects) {
  Arena arena;
  struct Point {
    int x, y;
  };
  Point* p = arena.New<Point>(Point{3, 4});
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

TEST(Arena, ResetReleasesEverything) {
  Arena arena;
  arena.Allocate(1000);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
}

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable t;
  Symbol a = t.Intern("hello");
  Symbol b = t.Intern("hello");
  Symbol c = t.Intern("world");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(t.Name(a), "hello");
  EXPECT_EQ(t.size(), 2u);
}

TEST(SymbolTable, LookupWithoutInterning) {
  SymbolTable t;
  EXPECT_FALSE(t.Lookup("missing").valid());
  Symbol a = t.Intern("present");
  EXPECT_EQ(t.Lookup("present"), a);
  EXPECT_EQ(t.size(), 1u);  // Lookup must not create entries
}

TEST(SymbolTable, InvalidSymbolName) {
  SymbolTable t;
  EXPECT_EQ(t.Name(Symbol()), "<invalid>");
  EXPECT_FALSE(Symbol().valid());
}

TEST(Hash, Mix64Scatters) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Hash, CombineIsOrderSensitive) {
  uint64_t a = HashCombine(HashCombine(0, 1), 2);
  uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(Hash, StringHashing) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, UniformRangeBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble(2.0, 3.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(Rng, UniformCoversDomain) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
  EXPECT_EQ(s.message(), "thing");
  EXPECT_NE(s.ToString().find("NOT_FOUND"), std::string::npos);
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> v = 42;
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  StatusOr<int> e = Status::InvalidArgument("bad");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), Status::Code::kInvalidArgument);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  double ms = t.ElapsedMillis();
  EXPECT_GE(ms, 5.0);
  EXPECT_LT(ms, 5000.0);
  t.Restart();
  EXPECT_LT(t.ElapsedMillis(), 5.0);
}

}  // namespace
}  // namespace volcano
