// OODB model tests: the second data model (object algebra, assembledness as
// the physical property, ASSEMBLY as its enforcer — paper §4.1), registered
// exclusively through the optimizer generator. Exercises the engine's data
// model independence: nothing in src/search/ knows what "assembled" means.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "gen/codegen.h"
#include "gen/parser.h"
#include "oodb/oodb_model.h"
#include "search/optimizer.h"

namespace volcano::oodb {
namespace {

struct Fixture {
  Fixture() {
    model.AddClass("Employee", 20000, 96);
    model.AddClass("Department", 500, 96);
    model.AddClass("Floor", 40, 96);
  }
  ExprPtr Path(int depth) {
    ExprPtr e = model.Extent("Employee");
    const char* refs[] = {"department", "floor", "building"};
    for (int i = 0; i < depth; ++i) e = model.Traverse(std::move(e), refs[i]);
    return e;
  }
  OodbModel model;
};

TEST(OodbModel, GeneratedRegistrationPopulatesTables) {
  Fixture f;
  EXPECT_EQ(f.model.registry().size(), 6u);  // 2 logical + 3 physical + 1 enf
  EXPECT_EQ(f.model.registry().Name(f.model.ops().kEXTENT), "EXTENT");
  EXPECT_EQ(f.model.registry().ClassOf(f.model.ops().kASSEMBLY),
            OpClass::kEnforcer);
  EXPECT_EQ(f.model.rule_set().implementations().size(), 3u);
  EXPECT_EQ(f.model.rule_set().enforcers().size(), 1u);
  EXPECT_TRUE(f.model.rule_set().transformations().empty());
}

TEST(OodbModel, GoldenMatchesCommittedGeneratedSources) {
  std::ifstream in("src/oodb/oodb.model");
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  StatusOr<gen::ModelSpec> spec = gen::ParseModelSpec(text.str());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  StatusOr<gen::GeneratedCode> code =
      gen::GenerateOptimizerCode(*spec, "oodb/generated/");
  ASSERT_TRUE(code.ok());

  auto read = [](const char* path) {
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
  };
  EXPECT_EQ(code->header, read("src/oodb/generated/oodb_gen.h"));
  EXPECT_EQ(code->source, read("src/oodb/generated/oodb_gen.cc"));
}

TEST(OodbModel, SingleTraversalAssemblesWhenItPays) {
  // With default constants, assembly (3e-5/obj) + clustered traversal
  // (4e-6/obj) beats naive pointer chasing (1e-4/obj) already for one hop.
  Fixture f;
  Optimizer opt(f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*f.Path(1), nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op(), f.model.ops().kCLUSTERED_TRAVERSE);
  EXPECT_EQ((*plan)->input(0)->op(), f.model.ops().kASSEMBLY);
}

TEST(OodbModel, ExpensiveAssemblyFallsBackToPointerChasing) {
  OodbCostParams params;
  params.assembly_per_object = 1e-3;  // assembling is now the dominant cost
  OodbModel model(params);
  model.AddClass("Employee", 20000, 96);
  ExprPtr path = model.Traverse(model.Extent("Employee"), "department");
  Optimizer opt(model);
  StatusOr<PlanPtr> plan = opt.Optimize(*path, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op(), model.ops().kNAIVE_TRAVERSE);
}

TEST(OodbModel, DeepPathAmortizesOneAssembly) {
  Fixture f;
  Optimizer opt(f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*f.Path(2), nullptr);
  ASSERT_TRUE(plan.ok());
  // Exactly one ASSEMBLY in the plan, at the bottom.
  int assemblies = 0;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& node) {
    if (node.op() == f.model.ops().kASSEMBLY) ++assemblies;
    for (const auto& in : node.inputs()) walk(*in);
  };
  walk(**plan);
  EXPECT_EQ(assemblies, 1);
  EXPECT_EQ((*plan)->op(), f.model.ops().kCLUSTERED_TRAVERSE);
}

TEST(OodbModel, RequiredAssembledOutputIsHonoured) {
  Fixture f;
  Optimizer opt(f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*f.Path(2), f.model.Assembled());
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE((*plan)->props()->Covers(*f.model.Assembled()));
}

TEST(OodbModel, ExcludingVectorPreventsAssemblyOverAssembled) {
  // The ASSEMBLY enforcer's excluding vector bars inputs that are already
  // assembled: no plan ever stacks ASSEMBLY on CLUSTERED_TRAVERSE or on
  // another ASSEMBLY.
  Fixture f;
  Optimizer opt(f.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*f.Path(2), f.model.Assembled());
  ASSERT_TRUE(plan.ok());
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& node) {
    if (node.op() == f.model.ops().kASSEMBLY) {
      EXPECT_FALSE(node.input(0)->props()->Covers(*f.model.Assembled()));
    }
    for (const auto& in : node.inputs()) walk(*in);
  };
  walk(**plan);
}

TEST(OodbModel, WinnersKeyedByAssembledness) {
  Fixture f;
  Optimizer opt(f.model);
  GroupId g = opt.AddQuery(*f.model.Extent("Department"));
  ASSERT_TRUE(opt.OptimizeGroup(g, f.model.AnyProps()).ok());
  ASSERT_TRUE(opt.OptimizeGroup(g, f.model.Assembled()).ok());
  const Winner* w_any = opt.memo().FindWinner(
      opt.memo().Find(g), GoalKey{f.model.AnyProps(), nullptr});
  const Winner* w_asm = opt.memo().FindWinner(
      opt.memo().Find(g), GoalKey{f.model.Assembled(), nullptr});
  ASSERT_NE(w_any, nullptr);
  ASSERT_NE(w_asm, nullptr);
  EXPECT_EQ(w_any->plan->op(), f.model.ops().kEXTENT_SCAN);
  EXPECT_EQ(w_asm->plan->op(), f.model.ops().kASSEMBLY);
}

TEST(OodbModel, UnknownClassIsRejected) {
  Fixture f;
  EXPECT_DEATH_IF_SUPPORTED((void)f.model.Extent("Ghost"), "CHECK");
}

}  // namespace
}  // namespace volcano::oodb
