// EXODUS baseline tests: it must be a *correct* optimizer (valid plans,
// optimal within its own property-blind cost model) while exhibiting the
// documented behaviours the paper measures — merge-join paying for its own
// sorts, blanket final sorts for ORDER BY, reanalysis effort, and the node
// cap abort.

#include <gtest/gtest.h>

#include "exodus/exodus_optimizer.h"
#include "relational/query_gen.h"
#include "relational/rel_plan_cost.h"
#include "search/optimizer.h"

namespace volcano {
namespace {

rel::Workload MakeWorkload(int relations, uint64_t seed,
                           double order_by = 0.0) {
  rel::WorkloadOptions opts;
  opts.num_relations = relations;
  opts.order_by_prob = order_by;
  opts.sorted_base_prob = 0.5;
  return rel::GenerateWorkload(opts, seed);
}

TEST(Exodus, ProducesValidPlans) {
  for (int n : {1, 2, 4, 6}) {
    for (uint64_t seed : {1u, 9u}) {
      rel::Workload w = MakeWorkload(n, seed, 0.5);
      exodus::ExodusOptimizer ex(*w.model);
      StatusOr<PlanPtr> plan = ex.Optimize(*w.query, w.required);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      EXPECT_TRUE(rel::ValidatePlan(**plan, *w.model).ok());
      EXPECT_TRUE((*plan)->props()->Covers(*w.required));
    }
  }
}

TEST(Exodus, AlwaysSortsForOrderBy) {
  // Without physical properties, an ORDER BY is met by an unconditional
  // final sort — even when the plan below happens to deliver the order.
  rel::Workload w = MakeWorkload(3, 4, /*order_by=*/1.0);
  ASSERT_NE(w.required->ToString(), "any");
  exodus::ExodusOptimizer ex(*w.model);
  StatusOr<PlanPtr> plan = ex.Optimize(*w.query, w.required);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->op(), w.model->ops().sort);
}

TEST(Exodus, MergeJoinAlwaysPaysForSorts) {
  // Both inputs stored sorted: Volcano exploits it, EXODUS cannot see it,
  // so its merge-join option still carries two sorts and it picks hash join
  // (whose plan is strictly worse here).
  rel::Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("A", 5000, 100, 2).ok());
  ASSERT_TRUE(catalog.AddRelation("B", 5000, 100, 2).ok());
  Symbol a0 = catalog.symbols().Lookup("A.a0");
  Symbol b0 = catalog.symbols().Lookup("B.a0");
  ASSERT_TRUE(catalog.SetSortedOn(catalog.symbols().Lookup("A"), {a0}).ok());
  ASSERT_TRUE(catalog.SetSortedOn(catalog.symbols().Lookup("B"), {b0}).ok());
  rel::RelModel model(catalog);
  ExprPtr q = model.Join(model.Get("A"), model.Get("B"), a0, b0);

  exodus::ExodusOptimizer ex(model);
  StatusOr<PlanPtr> eplan = ex.Optimize(*q, nullptr);
  ASSERT_TRUE(eplan.ok());
  EXPECT_EQ((*eplan)->op(), model.ops().hash_join);

  Optimizer volcano(model);
  StatusOr<PlanPtr> vplan = volcano.Optimize(*q, nullptr);
  ASSERT_TRUE(vplan.ok());
  EXPECT_EQ((*vplan)->op(), model.ops().merge_join);

  double e = model.cost_model().Total(rel::RecostPlan(**eplan, model));
  double v = model.cost_model().Total(rel::RecostPlan(**vplan, model));
  EXPECT_GT(e, v);
}

TEST(Exodus, ExploresFullJoinOrderSpace) {
  // Within its own cost model the baseline is exhaustive: on a workload
  // with no stored sort orders and no ORDER BY, hash joins dominate
  // everywhere, properties cannot help, and both optimizers must find plans
  // of identical estimated cost.
  for (uint64_t seed : {2u, 6u, 10u, 14u}) {
    rel::WorkloadOptions opts;
    opts.num_relations = 4;
    opts.sorted_base_prob = 0.0;
    opts.order_by_prob = 0.0;
    rel::Workload w = rel::GenerateWorkload(opts, seed);

    exodus::ExodusOptimizer ex(*w.model);
    StatusOr<PlanPtr> eplan = ex.Optimize(*w.query, w.required);
    ASSERT_TRUE(eplan.ok());
    Optimizer volcano(*w.model);
    StatusOr<PlanPtr> vplan = volcano.Optimize(*w.query, w.required);
    ASSERT_TRUE(vplan.ok());

    double e = w.model->cost_model().Total(rel::RecostPlan(**eplan, *w.model));
    double v = w.model->cost_model().Total(rel::RecostPlan(**vplan, *w.model));
    EXPECT_NEAR(e, v, 1e-9 * v) << "seed " << seed;
  }
}

TEST(Exodus, ReanalysisEffortGrowsSuperlinearly) {
  uint64_t nodes4 = 0, nodes7 = 0;
  {
    rel::Workload w = MakeWorkload(4, 3);
    exodus::ExodusOptimizer ex(*w.model);
    ASSERT_TRUE(ex.Optimize(*w.query, w.required).ok());
    nodes4 = ex.stats().mesh_nodes;
    EXPECT_GT(ex.stats().reanalyses, 0u);
  }
  {
    rel::Workload w = MakeWorkload(7, 3);
    exodus::ExodusOptimizer ex(*w.model);
    ASSERT_TRUE(ex.Optimize(*w.query, w.required).ok());
    nodes7 = ex.stats().mesh_nodes;
  }
  // ~vs 1.75x more relations: far more than proportional node growth.
  EXPECT_GT(nodes7, nodes4 * 8);
}

TEST(Exodus, NodeCapAbortsLikeRunningOutOfMemory) {
  rel::Workload w = MakeWorkload(6, 5);
  exodus::ExodusOptions opts;
  opts.max_nodes = 100;
  exodus::ExodusOptimizer ex(*w.model, opts);
  StatusOr<PlanPtr> plan = ex.Optimize(*w.query, w.required);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), Status::Code::kResourceExhausted);
  EXPECT_TRUE(ex.stats().aborted);
}

TEST(Exodus, StatsToStringMentionsAbort) {
  exodus::ExodusStats stats;
  stats.aborted = true;
  EXPECT_NE(stats.ToString().find("ABORTED"), std::string::npos);
}

TEST(Exodus, SingleRelationQuery) {
  rel::Workload w = MakeWorkload(1, 8);
  exodus::ExodusOptimizer ex(*w.model);
  StatusOr<PlanPtr> plan = ex.Optimize(*w.query, w.required);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(rel::ValidatePlan(**plan, *w.model).ok());
}

}  // namespace
}  // namespace volcano
