// Memo tests: expression insertion and deduplication, equivalence-class
// creation and merging (the paper's Figure 3), winner bookkeeping (plans and
// memoized failures), and the in-progress marking.

#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "relational/query_gen.h"
#include "relational/rel_model.h"
#include "search/memo.h"
#include "search/optimizer.h"

namespace volcano {
namespace {

using rel::Catalog;
using rel::RelModel;

struct Fixture {
  Fixture() {
    VOLCANO_CHECK(catalog.AddRelation("A", 1000, 100, 2).ok());
    VOLCANO_CHECK(catalog.AddRelation("B", 2000, 100, 2).ok());
    VOLCANO_CHECK(catalog.AddRelation("C", 3000, 100, 2).ok());
    model = std::make_unique<RelModel>(catalog);
  }

  Symbol Attr(const char* name) {
    Symbol s = catalog.symbols().Lookup(name);
    VOLCANO_CHECK(s.valid());
    return s;
  }

  Catalog catalog;
  std::unique_ptr<RelModel> model;
};

TEST(Memo, InsertQueryCreatesOneClassPerNode) {
  Fixture f;
  Memo memo(*f.model);
  ExprPtr q = f.model->Join(f.model->Get("A"), f.model->Get("B"),
                            f.Attr("A.a0"), f.Attr("B.a0"));
  GroupId root = memo.InsertQuery(*q);
  EXPECT_EQ(memo.num_groups(), 3u);  // A, B, join
  EXPECT_EQ(memo.num_exprs(), 3u);
  EXPECT_EQ(memo.group(root).exprs().size(), 1u);
}

TEST(Memo, DuplicateInsertIsDetected) {
  Fixture f;
  Memo memo(*f.model);
  ExprPtr q = f.model->Get("A");
  GroupId g1 = memo.InsertQuery(*q);
  GroupId g2 = memo.InsertQuery(*q);
  EXPECT_EQ(memo.Find(g1), memo.Find(g2));
  EXPECT_EQ(memo.num_exprs(), 1u);
}

TEST(Memo, DistinctArgsAreDistinctExprs) {
  Fixture f;
  Memo memo(*f.model);
  GroupId a = memo.InsertQuery(*f.model->Get("A"));
  GroupId b = memo.InsertQuery(*f.model->Get("B"));
  EXPECT_NE(memo.Find(a), memo.Find(b));
  EXPECT_EQ(memo.num_exprs(), 2u);
}

TEST(Memo, LogicalPropsDerivedOncePerClass) {
  Fixture f;
  Memo memo(*f.model);
  GroupId g = memo.InsertQuery(*f.model->Get("A"));
  const auto& props = rel::AsRel(*memo.LogicalOf(g));
  EXPECT_DOUBLE_EQ(props.cardinality(), 1000);
  EXPECT_TRUE(props.HasAttr(f.Attr("A.a0")));
  EXPECT_FALSE(props.HasAttr(f.Attr("B.a0")));
}

TEST(Memo, InsertRexIntoClassAddsExpression) {
  Fixture f;
  Memo memo(*f.model);
  ExprPtr q = f.model->Join(f.model->Get("A"), f.model->Get("B"),
                            f.Attr("A.a0"), f.Attr("B.a0"));
  GroupId root = memo.InsertQuery(*q);
  GroupId ga = memo.InsertQuery(*f.model->Get("A"));
  GroupId gb = memo.InsertQuery(*f.model->Get("B"));

  // Commuted variant inserted into the same class.
  OpArgPtr arg =
      rel::JoinArg::Make(f.catalog.symbols(), f.Attr("B.a0"), f.Attr("A.a0"));
  RexPtr rex = RexNode::Node(f.model->ops().join, arg,
                             {RexNode::Leaf(gb), RexNode::Leaf(ga)});
  memo.InsertRex(*rex, root);
  EXPECT_EQ(memo.group(root).exprs().size(), 2u);
  EXPECT_EQ(memo.num_groups(), 3u);  // no new class

  // Re-inserting is a no-op.
  memo.InsertRex(*rex, root);
  EXPECT_EQ(memo.group(root).exprs().size(), 2u);
}

TEST(Memo, AssociativityCreatesNewClassFigure3) {
  // The paper's Figure 3: rewriting JOIN(JOIN(A,B),C) to JOIN(A,JOIN(B,C))
  // adds one expression to the top class and creates exactly one new class
  // for JOIN(B,C).
  Fixture f;
  Memo memo(*f.model);
  ExprPtr inner = f.model->Join(f.model->Get("A"), f.model->Get("B"),
                                f.Attr("A.a0"), f.Attr("B.a0"));
  ExprPtr q = f.model->Join(inner, f.model->Get("C"), f.Attr("B.a1"),
                            f.Attr("C.a0"));
  GroupId root = memo.InsertQuery(*q);
  size_t groups_before = memo.num_groups();
  ASSERT_EQ(groups_before, 5u);  // A, B, C, AB, ABC

  GroupId ga = memo.InsertQuery(*f.model->Get("A"));
  GroupId gb = memo.InsertQuery(*f.model->Get("B"));
  GroupId gc = memo.InsertQuery(*f.model->Get("C"));

  OpArgPtr bc_arg =
      rel::JoinArg::Make(f.catalog.symbols(), f.Attr("B.a1"), f.Attr("C.a0"));
  RexPtr bc = RexNode::Node(f.model->ops().join, bc_arg,
                            {RexNode::Leaf(gb), RexNode::Leaf(gc)});
  OpArgPtr top_arg =
      rel::JoinArg::Make(f.catalog.symbols(), f.Attr("A.a0"), f.Attr("B.a0"));
  RexPtr rex = RexNode::Node(f.model->ops().join, top_arg,
                             {RexNode::Leaf(ga), bc});
  memo.InsertRex(*rex, root);

  EXPECT_EQ(memo.num_groups(), groups_before + 1);  // exactly one new class
  EXPECT_EQ(memo.group(root).exprs().size(), 2u);
}

TEST(Memo, LeafRexMergesClasses) {
  // A rule rewriting an expression to one of its inputs (e.g. a vacuous
  // select) merges the two classes.
  Fixture f;
  Memo memo(*f.model);
  ExprPtr q = f.model->Select(f.model->Get("A"), f.Attr("A.a0"),
                              rel::CmpOp::kLess, 1000, 1.0);
  GroupId root = memo.InsertQuery(*q);
  GroupId ga = memo.InsertQuery(*f.model->Get("A"));
  ASSERT_NE(memo.Find(root), memo.Find(ga));

  size_t merges_before = memo.num_merges();
  memo.InsertRex(*RexNode::Leaf(ga), root);
  EXPECT_EQ(memo.Find(root), memo.Find(ga));
  EXPECT_EQ(memo.num_merges(), merges_before + 1);
}

TEST(Memo, MergePropagatesToParents) {
  // When two classes merge, parent expressions referencing them normalize to
  // the same signature, which must cascade into a parent-class merge.
  Fixture f;
  Memo memo(*f.model);

  // Two distinct leaf classes that will be declared equivalent.
  ExprPtr sel_a1 = f.model->Select(f.model->Get("A"), f.Attr("A.a0"),
                                   rel::CmpOp::kLess, 10, 0.1);
  GroupId g1 = memo.InsertQuery(*sel_a1);
  GroupId ga = memo.InsertQuery(*f.model->Get("A"));

  // Parents: identical joins over g1 and ga respectively.
  OpArgPtr arg =
      rel::JoinArg::Make(f.catalog.symbols(), f.Attr("A.a0"), f.Attr("B.a0"));
  GroupId gb = memo.InsertQuery(*f.model->Get("B"));
  auto [p1, c1] = memo.InsertMExpr(f.model->ops().join, arg, {g1, gb},
                                   kInvalidGroup);
  auto [p2, c2] = memo.InsertMExpr(f.model->ops().join, arg, {ga, gb},
                                   kInvalidGroup);
  ASSERT_TRUE(c1);
  ASSERT_TRUE(c2);
  ASSERT_NE(memo.Find(p1->group()), memo.Find(p2->group()));

  // Declare g1 == ga; the parents must merge too.
  memo.InsertRex(*RexNode::Leaf(ga), g1);
  EXPECT_EQ(memo.Find(p1->group()), memo.Find(p2->group()));
}

TEST(Memo, WinnerStorageKeepsBetterPlan) {
  Fixture f;
  Memo memo(*f.model);
  GroupId g = memo.InsertQuery(*f.model->Get("A"));
  GoalKey key{f.model->AnyProps(), nullptr};

  PlanPtr plan1 = PlanNode::Make(f.model->ops().file_scan, nullptr, {},
                                 f.model->AnyProps(), memo.LogicalOf(g),
                                 Cost::Vector({1.0, 1.0}));
  PlanPtr plan2 = PlanNode::Make(f.model->ops().file_scan, nullptr, {},
                                 f.model->AnyProps(), memo.LogicalOf(g),
                                 Cost::Vector({0.5, 0.5}));
  memo.StoreWinner(g, key, Winner{plan1, plan1->cost()});
  memo.StoreWinner(g, key, Winner{plan2, plan2->cost()});
  const Winner* w = memo.FindWinner(g, key);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->plan, plan2);

  // A worse plan does not displace the winner.
  memo.StoreWinner(g, key, Winner{plan1, plan1->cost()});
  EXPECT_EQ(memo.FindWinner(g, key)->plan, plan2);
}

TEST(Memo, FailureRecordsKeepHighestLimit) {
  Fixture f;
  Memo memo(*f.model);
  GroupId g = memo.InsertQuery(*f.model->Get("A"));
  GoalKey key{f.model->Sorted({f.Attr("A.a0")}), nullptr};

  memo.StoreWinner(g, key, Winner{nullptr, Cost::Scalar(1.0)});
  memo.StoreWinner(g, key, Winner{nullptr, Cost::Scalar(5.0)});
  memo.StoreWinner(g, key, Winner{nullptr, Cost::Scalar(2.0)});
  const Winner* w = memo.FindWinner(g, key);
  ASSERT_NE(w, nullptr);
  EXPECT_TRUE(w->failed());
  EXPECT_DOUBLE_EQ(w->cost[0], 5.0);

  // A real plan displaces the failure.
  PlanPtr plan = PlanNode::Make(f.model->ops().file_scan, nullptr, {},
                                f.model->AnyProps(), memo.LogicalOf(g),
                                Cost::Scalar(9.0));
  memo.StoreWinner(g, key, Winner{plan, plan->cost()});
  EXPECT_FALSE(memo.FindWinner(g, key)->failed());
}

TEST(Memo, WinnersAreKeyedByPropertyVector) {
  Fixture f;
  Memo memo(*f.model);
  GroupId g = memo.InsertQuery(*f.model->Get("A"));
  GoalKey any{f.model->AnyProps(), nullptr};
  GoalKey sorted{f.model->Sorted({f.Attr("A.a0")}), nullptr};
  GoalKey sorted_excl{f.model->Sorted({f.Attr("A.a0")}),
                      f.model->Sorted({f.Attr("A.a0")})};

  PlanPtr plan = PlanNode::Make(f.model->ops().file_scan, nullptr, {},
                                f.model->AnyProps(), memo.LogicalOf(g),
                                Cost::Scalar(1.0));
  memo.StoreWinner(g, any, Winner{plan, plan->cost()});
  EXPECT_NE(memo.FindWinner(g, any), nullptr);
  EXPECT_EQ(memo.FindWinner(g, sorted), nullptr);
  EXPECT_EQ(memo.FindWinner(g, sorted_excl), nullptr);

  memo.StoreWinner(g, sorted_excl, Winner{nullptr, Cost::Scalar(3.0)});
  EXPECT_EQ(memo.FindWinner(g, sorted), nullptr);
  EXPECT_NE(memo.FindWinner(g, sorted_excl), nullptr);
}

TEST(Memo, InProgressMarking) {
  Fixture f;
  Memo memo(*f.model);
  GroupId g = memo.InsertQuery(*f.model->Get("A"));
  GoalKey key{f.model->AnyProps(), nullptr};
  EXPECT_FALSE(memo.IsInProgress(g, key));
  memo.MarkInProgress(g, key);
  EXPECT_TRUE(memo.IsInProgress(g, key));
  memo.UnmarkInProgress(g, key);
  EXPECT_FALSE(memo.IsInProgress(g, key));
}

TEST(Memo, MergeRecanonicalizesSignaturesAndPreservesWinners) {
  // Stress the merge path of the flat signature table: a two-level parent
  // chain over two classes that become equivalent. After the cascade, every
  // surviving signature entry must be re-canonicalized (duplicate inserts
  // under either old input spelling are detected), dead expressions must
  // stay dead, fired-rule masks must be OR-merged into the survivor, and
  // winner tables must survive with their cached-hash keys intact.
  Fixture f;
  Memo memo(*f.model);

  ExprPtr sel = f.model->Select(f.model->Get("A"), f.Attr("A.a0"),
                                rel::CmpOp::kLess, 10, 0.1);
  GroupId g1 = memo.InsertQuery(*sel);
  GroupId ga = memo.InsertQuery(*f.model->Get("A"));
  GroupId gb = memo.InsertQuery(*f.model->Get("B"));
  GroupId gc = memo.InsertQuery(*f.model->Get("C"));
  ASSERT_NE(memo.Find(g1), memo.Find(ga));

  OpArgPtr j1 =
      rel::JoinArg::Make(f.catalog.symbols(), f.Attr("A.a0"), f.Attr("B.a0"));
  OpArgPtr j2 =
      rel::JoinArg::Make(f.catalog.symbols(), f.Attr("B.a1"), f.Attr("C.a0"));

  // Level-1 parents over g1 and ga; duplicates once g1 == ga.
  auto [p1, c1] = memo.InsertMExpr(f.model->ops().join, j1, {g1, gb},
                                   kInvalidGroup);
  auto [p2, c2] = memo.InsertMExpr(f.model->ops().join, j1, {ga, gb},
                                   kInvalidGroup);
  ASSERT_TRUE(c1 && c2);
  // Level-2 parents over the level-1 classes; the merge must cascade.
  auto [q1, d1] = memo.InsertMExpr(f.model->ops().join, j2,
                                   {p1->group(), gc}, kInvalidGroup);
  auto [q2, d2] = memo.InsertMExpr(f.model->ops().join, j2,
                                   {p2->group(), gc}, kInvalidGroup);
  ASSERT_TRUE(d1 && d2);

  p1->MarkFired(3);
  p2->MarkFired(5);

  // Winners on the to-be-merged level-1 classes: same goal with different
  // costs, plus a memoized failure under a second goal.
  GoalKey any{f.model->AnyProps(), nullptr};
  GoalKey sorted{f.model->Sorted({f.Attr("A.a0")}), nullptr};
  PlanPtr costly = PlanNode::Make(f.model->ops().file_scan, nullptr, {},
                                  f.model->AnyProps(),
                                  memo.LogicalOf(p1->group()),
                                  Cost::Scalar(4.0));
  PlanPtr cheap = PlanNode::Make(f.model->ops().file_scan, nullptr, {},
                                 f.model->AnyProps(),
                                 memo.LogicalOf(p2->group()),
                                 Cost::Scalar(1.0));
  memo.StoreWinner(p1->group(), any, Winner{costly, costly->cost()});
  memo.StoreWinner(p2->group(), any, Winner{cheap, cheap->cost()});
  memo.StoreWinner(p2->group(), sorted, Winner{nullptr, Cost::Scalar(7.0)});

  size_t exprs_before = memo.num_exprs();
  size_t merges_before = memo.num_merges();

  // Declare g1 == ga; level-1 and level-2 classes must cascade-merge.
  memo.InsertRex(*RexNode::Leaf(ga), g1);
  EXPECT_EQ(memo.Find(g1), memo.Find(ga));
  EXPECT_EQ(memo.Find(p1->group()), memo.Find(p2->group()));
  EXPECT_EQ(memo.Find(q1->group()), memo.Find(q2->group()));
  EXPECT_EQ(memo.num_merges(), merges_before + 3);

  // Exactly one duplicate died at each level, and the survivor carries the
  // union of the fired-rule marks.
  EXPECT_NE(p1->dead(), p2->dead());
  EXPECT_NE(q1->dead(), q2->dead());
  const MExpr* live = p1->dead() ? p2 : p1;
  EXPECT_TRUE(live->HasFired(3));
  EXPECT_TRUE(live->HasFired(5));
  EXPECT_EQ(memo.num_exprs(), exprs_before - 2);

  // Dead expressions are invisible to duplicate detection: re-inserting the
  // parent under *either* old input spelling finds the live survivor, with
  // no new expression or class created.
  size_t groups_before = memo.num_groups();
  auto [r1, created1] = memo.InsertMExpr(f.model->ops().join, j1, {g1, gb},
                                         kInvalidGroup);
  auto [r2, created2] = memo.InsertMExpr(f.model->ops().join, j1, {ga, gb},
                                         kInvalidGroup);
  EXPECT_FALSE(created1);
  EXPECT_FALSE(created2);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, live);
  EXPECT_FALSE(r1->dead());
  EXPECT_EQ(memo.num_groups(), groups_before);

  // The merged class holds exactly one live level-1 expression.
  GroupId merged = memo.Find(p1->group());
  size_t live_count = 0;
  for (const MExpr* m : memo.group(merged).exprs()) {
    if (!m->dead()) ++live_count;
  }
  EXPECT_EQ(live_count, 1u);

  // Winner tables survived the merge: the cheaper plan won under `any`, the
  // memoized failure under `sorted` carried over, and both remain reachable
  // through the canonical-goal probe (cached hashes stayed consistent).
  const Winner* w = memo.FindWinner(merged, any);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->plan, cheap);
  const Winner* wf = memo.FindWinner(merged, sorted);
  ASSERT_NE(wf, nullptr);
  EXPECT_TRUE(wf->failed());
  EXPECT_DOUBLE_EQ(wf->cost[0], 7.0);
  EXPECT_EQ(memo.group(merged).num_winners(), 2u);
}

TEST(Memo, ToStringMentionsClassesAndWinners) {
  Fixture f;
  Memo memo(*f.model);
  GroupId g = memo.InsertQuery(*f.model->Get("A"));
  GoalKey key{f.model->AnyProps(), nullptr};
  PlanPtr plan = PlanNode::Make(f.model->ops().file_scan,
                                rel::GetArg::Make(f.catalog.symbols(),
                                                  f.Attr("A.a0")),
                                {}, f.model->AnyProps(), memo.LogicalOf(g),
                                Cost::Scalar(1.0));
  memo.StoreWinner(g, key, Winner{plan, plan->cost()});
  std::string dump = memo.ToString();
  EXPECT_NE(dump.find("class"), std::string::npos);
  EXPECT_NE(dump.find("GET"), std::string::npos);
  EXPECT_NE(dump.find("FILE_SCAN"), std::string::npos);
}

}  // namespace
}  // namespace volcano
