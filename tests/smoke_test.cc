// End-to-end smoke test: optimize a small select-join query and check the
// resulting plan's basic sanity. Detailed behaviour is covered by the
// per-module suites.

#include <gtest/gtest.h>

#include "relational/query_gen.h"
#include "search/optimizer.h"

namespace volcano {
namespace {

TEST(Smoke, OptimizeThreeWayJoin) {
  rel::WorkloadOptions wopts;
  wopts.num_relations = 3;
  rel::Workload w = rel::GenerateWorkload(wopts, /*seed=*/42);

  Optimizer opt(*w.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE((*plan)->props()->Covers(*w.required));
  EXPECT_GT((*plan)->TreeSize(), 4u);
  EXPECT_GT(w.model->cost_model().Total((*plan)->cost()), 0.0);
}

TEST(Smoke, StatsPopulated) {
  rel::WorkloadOptions wopts;
  wopts.num_relations = 4;
  rel::Workload w = rel::GenerateWorkload(wopts, /*seed=*/7);

  Optimizer opt(*w.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  SearchStats stats = opt.stats();
  EXPECT_GT(stats.find_best_plan_calls, 0u);
  EXPECT_GT(stats.groups_created, 0u);
  EXPECT_GT(stats.transformations_applied, 0u);
  EXPECT_GT(stats.algorithm_moves, 0u);
}

}  // namespace
}  // namespace volcano
