// Workload generator tests: the generated queries must match the paper's
// experimental setup — n relations of 1,200-7,200 hundred-byte records, one
// selection per relation, a connected acyclic join graph — and be fully
// deterministic in the seed.

#include <gtest/gtest.h>

#include <functional>

#include "relational/query_gen.h"

namespace volcano::rel {
namespace {

struct Shape {
  int gets = 0;
  int selects = 0;
  int joins = 0;
};

Shape Analyze(const RelModel& model, const Expr& e) {
  Shape s;
  std::function<void(const Expr&)> walk = [&](const Expr& node) {
    if (node.op() == model.ops().get) ++s.gets;
    if (node.op() == model.ops().select) ++s.selects;
    if (node.op() == model.ops().join) ++s.joins;
    for (const auto& in : node.inputs()) walk(*in);
  };
  walk(e);
  return s;
}

TEST(QueryGen, PaperShape) {
  for (int n : {2, 4, 8}) {
    WorkloadOptions opts;
    opts.num_relations = n;
    Workload w = GenerateWorkload(opts, 42);
    Shape s = Analyze(*w.model, *w.query);
    EXPECT_EQ(s.gets, n);
    EXPECT_EQ(s.selects, n) << "as many selections as input relations";
    EXPECT_EQ(s.joins, n - 1) << "spanning tree";
    EXPECT_EQ(w.relations.size(), static_cast<size_t>(n));
  }
}

TEST(QueryGen, CardinalitiesInPaperRange) {
  WorkloadOptions opts;
  opts.num_relations = 8;
  Workload w = GenerateWorkload(opts, 7);
  for (Symbol rel : w.relations) {
    const RelationInfo* info = w.catalog->FindRelation(rel);
    ASSERT_NE(info, nullptr);
    EXPECT_GE(info->cardinality, 1200);
    EXPECT_LE(info->cardinality, 7200);
    EXPECT_DOUBLE_EQ(info->tuple_bytes, 100);
  }
}

TEST(QueryGen, DeterministicInSeed) {
  WorkloadOptions opts;
  opts.num_relations = 5;
  opts.order_by_prob = 0.5;
  Workload a = GenerateWorkload(opts, 99);
  Workload b = GenerateWorkload(opts, 99);
  EXPECT_EQ(a.model->ExprToString(*a.query), b.model->ExprToString(*b.query));
  EXPECT_EQ(a.required->ToString(), b.required->ToString());

  Workload c = GenerateWorkload(opts, 100);
  // Different seed, almost surely different query.
  EXPECT_NE(a.model->ExprToString(*a.query), c.model->ExprToString(*c.query));
}

TEST(QueryGen, JoinPredicatesAreWellPlaced) {
  // Every join's left attribute must come from the left subtree's schema and
  // the right attribute from the right subtree (the JoinArg convention).
  WorkloadOptions opts;
  opts.num_relations = 7;
  for (uint64_t seed : {1u, 2u, 3u}) {
    Workload w = GenerateWorkload(opts, seed);
    std::function<std::vector<Symbol>(const Expr&)> attrs =
        [&](const Expr& e) -> std::vector<Symbol> {
      if (e.op() == w.model->ops().get) {
        const auto& arg = static_cast<const GetArg&>(*e.arg());
        std::vector<Symbol> out;
        for (const auto& a :
             w.catalog->FindRelation(arg.relation())->attributes) {
          out.push_back(a.name);
        }
        return out;
      }
      std::vector<Symbol> out;
      for (const auto& in : e.inputs()) {
        std::vector<Symbol> sub = attrs(*in);
        out.insert(out.end(), sub.begin(), sub.end());
      }
      if (e.op() == w.model->ops().join) {
        const auto& arg = static_cast<const JoinArg&>(*e.arg());
        std::vector<Symbol> left = attrs(*e.input(0));
        std::vector<Symbol> right = attrs(*e.input(1));
        EXPECT_NE(std::find(left.begin(), left.end(), arg.left_attr()),
                  left.end());
        EXPECT_NE(std::find(right.begin(), right.end(), arg.right_attr()),
                  right.end());
      }
      return out;
    };
    attrs(*w.query);
  }
}

TEST(QueryGen, OrderByProbabilityRespected) {
  WorkloadOptions opts;
  opts.num_relations = 4;
  opts.order_by_prob = 0.0;
  Workload none = GenerateWorkload(opts, 5);
  EXPECT_EQ(none.required->ToString(), "any");

  opts.order_by_prob = 1.0;
  Workload always = GenerateWorkload(opts, 5);
  EXPECT_NE(always.required->ToString(), "any");
}

TEST(QueryGen, NoSelectionsOptionProducesPureJoinQueries) {
  WorkloadOptions opts;
  opts.num_relations = 3;
  opts.selections = false;
  Workload w = GenerateWorkload(opts, 1);
  Shape s = Analyze(*w.model, *w.query);
  EXPECT_EQ(s.selects, 0);
  EXPECT_EQ(s.gets, 3);
}

TEST(QueryGen, SortedBaseProbabilityExtremes) {
  WorkloadOptions opts;
  opts.num_relations = 6;
  opts.sorted_base_prob = 0.0;
  Workload none = GenerateWorkload(opts, 3);
  for (Symbol rel : none.relations) {
    EXPECT_TRUE(none.catalog->FindRelation(rel)->sorted_on.empty());
  }
  opts.sorted_base_prob = 1.0;
  Workload all = GenerateWorkload(opts, 3);
  int sorted = 0;
  for (Symbol rel : all.relations) {
    if (!all.catalog->FindRelation(rel)->sorted_on.empty()) ++sorted;
  }
  // Every relation that participates in a join edge is sorted.
  EXPECT_EQ(sorted, 6);
}

}  // namespace
}  // namespace volcano::rel
