// Serving-loop tests: response schema, cache hit byte-identity, catalog-bump
// invalidation, admission-control shedding, structured errors, and the
// counter invariants the soak test builds on.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "relational/catalog.h"
#include "search/search_config.h"
#include "serve/server.h"
#include "serve/session.h"
#include "support/fault.h"

namespace volcano::serve {
namespace {

void FillCatalog(rel::Catalog* catalog) {
  VOLCANO_CHECK(
      catalog->AddRelation("emp", 500, 100, 3, {500, 40, 10}).ok());
  VOLCANO_CHECK(catalog->AddRelation("dept", 40, 100, 2, {40, 5}).ok());
  VOLCANO_CHECK(catalog->AddRelation("loc", 10, 100, 2, {10, 10}).ok());
}

// The request grid the cache tests replay: each entry optimizes to a
// deterministic plan on the fixture catalog.
const char* const kQueries[] = {
    "SELECT * FROM emp",
    "SELECT * FROM emp WHERE emp.a1 < 10",
    "SELECT * FROM emp WHERE emp.a1 < 10 ORDER BY emp.a2",
    "SELECT * FROM emp, dept WHERE emp.a1 = dept.a0",
    "SELECT * FROM emp, dept WHERE emp.a1 = dept.a0 ORDER BY emp.a1",
    "SELECT * FROM emp, dept, loc "
    "WHERE emp.a1 = dept.a0 AND dept.a1 = loc.a0",
    "SELECT emp.a1, count(*) FROM emp GROUP BY emp.a1",
};

bool Contains(const std::string& s, const std::string& sub) {
  return s.find(sub) != std::string::npos;
}

TEST(Serve, PlanResponseSchema) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  Server server(&catalog);
  std::string resp = server.HandleLine("SELECT * FROM emp");
  EXPECT_TRUE(Contains(resp, "\"ok\": true")) << resp;
  EXPECT_TRUE(Contains(resp, "\"cached\": false")) << resp;
  EXPECT_TRUE(Contains(resp, "\"degraded\": false")) << resp;
  EXPECT_TRUE(Contains(resp, "\"source\": \"exhaustive\"")) << resp;
  EXPECT_TRUE(Contains(resp, "\"algebra\": \"GET[emp]\"")) << resp;
  EXPECT_TRUE(Contains(resp, "\"plan\": ")) << resp;
  EXPECT_TRUE(Contains(resp, "\"cost\": ")) << resp;
}

// A cache hit must be byte-identical to the cold response except for the
// "cached" flag — the contract that makes the cache safe to trust.
TEST(Serve, CacheHitsAreByteIdentical) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  Server server(&catalog);
  for (const char* sql : kQueries) {
    std::string cold = server.HandleLine(sql);
    std::string warm = server.HandleLine(sql);
    ASSERT_TRUE(Contains(cold, "\"cached\": false")) << cold;
    ASSERT_TRUE(Contains(warm, "\"cached\": true")) << warm;
    // Responses carry distinct ids; normalize id and cached flag.
    auto strip = [](std::string s) {
      size_t comma = s.find(',');
      s = s.substr(comma);  // drop {"id": N
      size_t pos = s.find("\"cached\": ");
      size_t end = s.find_first_of(",}", pos);
      return s.substr(0, pos) + s.substr(end);
    };
    EXPECT_EQ(strip(cold), strip(warm)) << sql;
  }
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.cache_hits, std::size(kQueries));
  EXPECT_EQ(stats.cached, std::size(kQueries));
}

// Spelling variants that normalize to the same signature share an entry;
// different constants do not (they change selectivity).
TEST(Serve, SignatureNormalization) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  Server server(&catalog);
  server.HandleLine("SELECT * FROM emp WHERE emp.a1 < 10");
  std::string variant =
      server.HandleLine("select  *  from emp where emp.a1 < 10");
  EXPECT_TRUE(Contains(variant, "\"cached\": true")) << variant;
  std::string other_constant =
      server.HandleLine("SELECT * FROM emp WHERE emp.a1 < 11");
  EXPECT_TRUE(Contains(other_constant, "\"cached\": false")) << other_constant;
}

TEST(Serve, CatalogBumpInvalidatesCache) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  Server server(&catalog);
  server.HandleLine("SELECT * FROM emp");
  EXPECT_TRUE(
      Contains(server.HandleLine("SELECT * FROM emp"), "\"cached\": true"));

  uint64_t before = server.catalog_version();
  std::string bump = server.HandleLine("!bump");
  EXPECT_TRUE(Contains(bump, "\"ok\": true")) << bump;
  EXPECT_EQ(server.catalog_version(), before + 1);

  std::string after = server.HandleLine("SELECT * FROM emp");
  EXPECT_TRUE(Contains(after, "\"cached\": false")) << after;
  ServeStats stats = server.stats();
  EXPECT_GE(stats.cache_invalidations, 1u);
  EXPECT_EQ(stats.catalog_bumps, 1u);
  EXPECT_EQ(stats.model_rebuilds, 1u);
}

// A statistics change must invalidate: the plan for the same SQL may change.
TEST(Serve, DistinctUpdateInvalidates) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  Server server(&catalog);
  server.HandleLine("SELECT * FROM emp WHERE emp.a1 = 3");
  std::string resp = server.HandleLine("!distinct emp.a1 2");
  EXPECT_TRUE(Contains(resp, "\"admin\": \"distinct\"")) << resp;
  std::string after = server.HandleLine("SELECT * FROM emp WHERE emp.a1 = 3");
  EXPECT_TRUE(Contains(after, "\"cached\": false")) << after;

  std::string bad = server.HandleLine("!distinct nosuch.a1 5");
  EXPECT_TRUE(Contains(bad, "\"ok\": false")) << bad;
}

TEST(Serve, StructuredErrorsNeverKillTheLoop) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  Server server(&catalog);
  struct Case {
    const char* line;
    const char* code;
  } cases[] = {
      {"SELEC * FROM emp", "INVALID_ARGUMENT"},
      {"SELECT * FROM nowhere", "INVALID_ARGUMENT"},
      {"SELECT * FROM emp WHERE emp.bogus = 1", "INVALID_ARGUMENT"},
      {"\x01garbage\x02", "INVALID_ARGUMENT"},
      {"!frobnicate", "INVALID_ARGUMENT"},
      {"!distinct", "INVALID_ARGUMENT"},
  };
  for (const Case& c : cases) {
    std::string resp = server.HandleLine(c.line);
    EXPECT_TRUE(Contains(resp, "\"ok\": false")) << resp;
    EXPECT_TRUE(Contains(resp, c.code)) << resp;
  }
  // The loop survives: a normal request still succeeds afterwards.
  EXPECT_TRUE(
      Contains(server.HandleLine("SELECT * FROM emp"), "\"ok\": true"));
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.errors, std::size(cases));
  EXPECT_EQ(stats.ok + stats.errors + stats.shed, stats.requests);
}

// With the admission cap at zero every request is shed — deterministically
// exercising the OVERLOADED path.
TEST(Serve, AdmissionControlSheds) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  ServerOptions options;
  options.max_inflight = 0;
  Server server(&catalog, options);
  std::string resp;
  bool accepted =
      server.Submit("SELECT * FROM emp", [&](std::string r) { resp = r; });
  EXPECT_FALSE(accepted);
  EXPECT_TRUE(Contains(resp, "\"shed\": true")) << resp;
  EXPECT_TRUE(Contains(resp, "OVERLOADED")) << resp;
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.requests, 1u);
}

// Concurrency: many submitters against few workers and a small admission
// cap. Every request must be answered exactly once (ok or shed), and the
// counter invariant must hold.
TEST(Serve, ConcurrentSubmittersAllAnswered) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  ServerOptions options;
  options.workers = 4;
  options.max_inflight = 8;
  Server server(&catalog, options);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> answered{0};
  std::atomic<int> shed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const char* sql = kQueries[(t + i) % std::size(kQueries)];
        bool accepted = server.Submit(sql, [&](std::string r) {
          ++answered;
          if (r.find("\"shed\": true") != std::string::npos) ++shed;
        });
        (void)accepted;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server.Drain();

  EXPECT_EQ(answered.load(), kThreads * kPerThread);
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests, uint64_t(kThreads * kPerThread));
  EXPECT_EQ(stats.ok + stats.errors + stats.shed, stats.requests);
  EXPECT_EQ(stats.shed, uint64_t(shed.load()));
  EXPECT_EQ(stats.errors, 0u);
}

// Degraded plans answer the request but must not enter the cache: a plan
// shaped by one request's budget weather is not the query's plan.
TEST(Serve, DegradedPlansAreNotCached) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  ServerOptions options;
  options.budget.max_find_best_plan_calls = 1;
  Server server(&catalog, options);
  const char* sql =
      "SELECT * FROM emp, dept, loc "
      "WHERE emp.a1 = dept.a0 AND dept.a1 = loc.a0";
  std::string first = server.HandleLine(sql);
  EXPECT_TRUE(Contains(first, "\"ok\": true")) << first;
  EXPECT_TRUE(Contains(first, "\"degraded\": true")) << first;
  std::string second = server.HandleLine(sql);
  EXPECT_TRUE(Contains(second, "\"cached\": false")) << second;
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.cache_insertions, 0u);
  EXPECT_GE(stats.degraded, 2u);
}

// A plan completed under a tripped exploration cap is exhaustive-source but
// approximate: the search finished, it just never proved optimality. Such a
// response must be degraded — and therefore cache-ineligible — or a later
// uncapped request would be served the capped plan as the catalog-state
// optimum.
TEST(Serve, ExploreCapTrippedPlansAreCacheIneligible) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  ServerOptions options;
  options.search.explore_limit = 1;  // trips on any multi-join query
  Server server(&catalog, options);
  const char* sql =
      "SELECT * FROM emp, dept, loc "
      "WHERE emp.a1 = dept.a0 AND dept.a1 = loc.a0";
  std::string first = server.HandleLine(sql);
  EXPECT_TRUE(Contains(first, "\"ok\": true")) << first;
  // The cap trips mid-closure but the search completes: still exhaustive-
  // source, yet flagged degraded via the approximate bit.
  EXPECT_TRUE(Contains(first, "\"source\": \"exhaustive\"")) << first;
  EXPECT_TRUE(Contains(first, "\"degraded\": true")) << first;
  std::string second = server.HandleLine(sql);
  EXPECT_TRUE(Contains(second, "\"cached\": false")) << second;
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.cache_insertions, 0u);
  EXPECT_GE(stats.degraded, 2u);
}

// Interleaved serving: many admitted requests' suspended best-first searches
// share one memory budget. Each slot gets memo_byte_limit = budget / max,
// so the combined arenas stay under the budget however the searches
// interleave; requests beyond max_concurrent are shed with
// RESOURCE_EXHAUSTED at admission.
TEST(Serve, InterleavedSearchesShareOneMemoryBudget) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  SearchOptions search;
  search.engine = SearchOptions::Engine::kBestFirst;
  Session session(catalog, SearchConfig::FromOptions(search).value());
  constexpr size_t kBudget = 3u * (128u << 10);
  session.ConfigureInterleaving(kBudget, /*max_concurrent=*/3);

  OptimizationBudget slice;
  slice.max_find_best_plan_calls = 5;  // forces suspension on any join
  const char* sqls[] = {
      "SELECT * FROM emp, dept, loc "
      "WHERE emp.a1 = dept.a0 AND dept.a1 = loc.a0 ORDER BY emp.a1",
      "SELECT * FROM emp, dept WHERE emp.a1 = dept.a0 ORDER BY emp.a2",
      "SELECT * FROM emp, loc WHERE emp.a2 = loc.a0",
  };
  std::vector<uint64_t> tickets;
  for (const char* sql : sqls) {
    StatusOr<uint64_t> t = session.BeginInterleaved(sql, slice);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    tickets.push_back(*t);
  }
  EXPECT_EQ(session.interleaved_active(), 3u);
  // The fourth request is shed at admission, not queued past the budget.
  StatusOr<uint64_t> overflow =
      session.BeginInterleaved(sqls[0], slice);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), Status::Code::kResourceExhausted);

  // Drive the three searches round-robin; the shared budget holds at every
  // step no matter whose slice runs.
  std::vector<Session::Result> results(tickets.size());
  std::vector<bool> done(tickets.size(), false);
  for (int round = 0; round < 2000; ++round) {
    bool all = true;
    for (size_t i = 0; i < tickets.size(); ++i) {
      if (done[i]) continue;
      all = false;
      Session::Result r = session.StepInterleaved(tickets[i]);
      EXPECT_LE(session.interleaved_arena_bytes(), kBudget)
          << "round " << round;
      if (r.status.ok() || r.status.code() != Status::Code::kResourceExhausted
          || !r.outcome.suspended) {
        results[i] = std::move(r);
        done[i] = true;
      }
    }
    if (all) break;
  }
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(done[i]) << "search " << i << " never completed";
    ASSERT_TRUE(results[i].status.ok())
        << "search " << i << ": " << results[i].status.ToString();
    EXPECT_FALSE(results[i].plan.empty()) << "search " << i;
  }
  EXPECT_EQ(session.interleaved_active(), 0u);
  // Freed slots admit again.
  StatusOr<uint64_t> again = session.BeginInterleaved(sqls[1], slice);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  for (int step = 0; step < 2000; ++step) {
    Session::Result r = session.StepInterleaved(*again);
    if (r.status.ok()) break;
    ASSERT_EQ(r.status.code(), Status::Code::kResourceExhausted);
  }
  EXPECT_EQ(session.interleaved_active(), 0u);
}

// The serve-layer fault injector only perturbs requests; every response is
// still well-formed and accounted.
TEST(Serve, FaultInjectedRequestsStayAccounted) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  FaultInjector fault({.seed = 7,
                       .request_malform_prob = 0.3,
                       .request_budget_prob = 0.3,
                       .catalog_bump_prob = 0.1});
  ServerOptions options;
  options.fault = &fault;
  Server server(&catalog, options);
  constexpr int kRequests = 200;
  for (int i = 0; i < kRequests; ++i) {
    std::string resp =
        server.HandleLine(kQueries[i % std::size(kQueries)]);
    EXPECT_TRUE(Contains(resp, "\"ok\": ")) << resp;
  }
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests, uint64_t(kRequests));
  EXPECT_EQ(stats.ok + stats.errors + stats.shed, stats.requests);
  const FaultInjector::Counters& fc = fault.counters();
  EXPECT_EQ(fc.request_sites, uint64_t(kRequests));
  // The malformed ones surfaced as errors.
  EXPECT_GE(stats.errors, fc.requests_malformed);
  EXPECT_EQ(stats.catalog_bumps, fc.catalog_bumps);
}

TEST(Serve, ServePumpSpeaksTheLineProtocol) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  Server server(&catalog);
  std::istringstream in(
      "SELECT * FROM emp\n"
      "\n"
      "!stats\n"
      "!quit\n"
      "SELECT * FROM emp\n");  // after !quit: never read
  std::ostringstream out;
  uint64_t served = server.Serve(in, out);
  EXPECT_EQ(served, 2u);  // blank line skipped, !quit terminates
  std::string text = out.str();
  EXPECT_TRUE(Contains(text, "\"plan\": ")) << text;
  EXPECT_TRUE(Contains(text, "\"serve\": ")) << text;
}

}  // namespace
}  // namespace volcano::serve
