// Rule-ceiling tests: MExpr tracks "already fired" transformation rules in a
// 64-bit mask (kFiredMaskBits), so RuleSet::kMaxTransformationRules must
// never exceed 64. These tests pin the ceiling from both sides: registering
// up to the limit works, the 65th registration dies, and a rule id at or
// beyond the mask width is rejected by MarkFired in all build modes.

#include <gtest/gtest.h>

#include <memory>

#include "relational/catalog.h"
#include "relational/rel_model.h"
#include "rules/rule_set.h"
#include "search/memo.h"

namespace volcano {
namespace {

using rel::Catalog;
using rel::RelModel;

/// A transformation rule that never rewrites anything; only its registration
/// bookkeeping matters here.
class NopRule final : public TransformationRule {
 public:
  explicit NopRule(OperatorId op)
      : TransformationRule("nop", Pattern::Op(op, {Pattern::Any(),
                                                   Pattern::Any()})) {}
  RexPtr Apply(const Binding&, const Memo&) const override { return nullptr; }
};

TEST(RuleLimit, MaskWidthMatchesRuleCeiling) {
  static_assert(RuleSet::kMaxTransformationRules <= kFiredMaskBits,
                "fired mask too narrow for the registered rule ceiling");
}

TEST(RuleLimit, RegisteringUpToTheCeilingAssignsDenseIds) {
  Catalog catalog;
  VOLCANO_CHECK(catalog.AddRelation("A", 1000, 100, 2).ok());
  RelModel model(catalog);
  OperatorId join = model.ops().join;

  RuleSet rules;
  for (size_t i = 0; i < RuleSet::kMaxTransformationRules; ++i) {
    RuleId id = rules.AddTransformation(std::make_unique<NopRule>(join));
    EXPECT_EQ(id, i);
  }
  EXPECT_EQ(rules.transformations().size(), RuleSet::kMaxTransformationRules);
  EXPECT_EQ(rules.TransformationsFor(join).size(),
            RuleSet::kMaxTransformationRules);
}

TEST(RuleLimitDeathTest, RegisteringBeyondTheCeilingDies) {
  Catalog catalog;
  VOLCANO_CHECK(catalog.AddRelation("A", 1000, 100, 2).ok());
  RelModel model(catalog);
  OperatorId join = model.ops().join;

  RuleSet rules;
  for (size_t i = 0; i < RuleSet::kMaxTransformationRules; ++i) {
    rules.AddTransformation(std::make_unique<NopRule>(join));
  }
  EXPECT_DEATH_IF_SUPPORTED(
      rules.AddTransformation(std::make_unique<NopRule>(join)), "CHECK");
}

TEST(RuleLimitDeathTest, MarkFiredRejectsIdsBeyondTheMask) {
  Catalog catalog;
  VOLCANO_CHECK(catalog.AddRelation("A", 1000, 100, 2).ok());
  RelModel model(catalog);
  Memo memo(model);
  GroupId g = memo.InsertQuery(*model.Get("A"));
  MExpr* m = memo.group(g).exprs().front();

  m->MarkFired(kFiredMaskBits - 1);  // the last representable rule is fine
  EXPECT_TRUE(m->HasFired(kFiredMaskBits - 1));
  EXPECT_DEATH_IF_SUPPORTED(m->MarkFired(kFiredMaskBits), "CHECK");
}

}  // namespace
}  // namespace volcano
