// Anytime suspension: with SearchOptions::suspend_on_trip, a tripped budget
// freezes the task stack in place and Optimizer::Resume() continues from the
// exact preemption point. The contract under test — over a hundred
// fault-injected preemption points — is that trip + Resume() produces
// exactly the plan an uninterrupted run produces: suspension is invisible to
// the search result.

#include <gtest/gtest.h>

#include <string>

#include "relational/query_gen.h"
#include "search/optimizer.h"
#include "search/search_config.h"
#include "support/fault.h"

namespace volcano {
namespace {

rel::Workload MakeWorkload(uint64_t seed) {
  rel::WorkloadOptions wopts;
  wopts.num_relations = 3 + static_cast<int>(seed % 4);
  wopts.join_graph = static_cast<rel::WorkloadOptions::JoinGraph>(seed % 3);
  wopts.sorted_base_prob = 0.5;
  wopts.order_by_prob = 0.5;
  wopts.min_cardinality = 50;
  wopts.max_cardinality = 200;
  return rel::GenerateWorkload(wopts, seed);
}

struct PlanLine {
  bool ok = false;
  std::string line;
  double cost = 0.0;
};

PlanLine Uninterrupted(const rel::Workload& w) {
  Optimizer opt(*w.model);
  StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
  PlanLine out;
  if (!plan.ok()) return out;
  out.ok = true;
  out.line = PlanToLine(**plan, w.model->registry());
  out.cost = w.model->cost_model().Total((*plan)->cost());
  return out;
}

// Injects a budget trip at one deterministic checkpoint, suspends there, and
// resumes to completion. 120 seeds x varying preemption points; nearly every
// scenario actually suspends (asserted in aggregate at the bottom).
TEST(SuspendResume, ResumedRunMatchesUninterruptedAcrossScenarios) {
  int suspended_scenarios = 0;
  for (uint64_t seed = 0; seed < 120; ++seed) {
    rel::Workload w = MakeWorkload(seed);
    PlanLine base = Uninterrupted(w);
    if (!base.ok) continue;  // NotFound baseline: nothing to compare

    FaultInjector::Config fc;
    fc.seed = seed;
    fc.expire_budget_at = 1 + (seed * 7) % 60;
    FaultInjector injector(fc);
    SearchOptions opts;
    opts.suspend_on_trip = true;
    opts.fault = &injector;
    Optimizer opt(*w.model, SearchConfig::FromOptions(opts).value());

    StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
    bool suspended = false;
    int resumes = 0;
    while (!plan.ok() && opt.CanResume()) {
      suspended = true;
      EXPECT_EQ(plan.status().code(), Status::Code::kResourceExhausted)
          << "seed " << seed;
      EXPECT_TRUE(opt.outcome().suspended) << "seed " << seed;
      plan = opt.Resume();
      ASSERT_LT(++resumes, 1000) << "seed " << seed;
    }
    ASSERT_TRUE(plan.ok()) << "seed " << seed << ": "
                           << plan.status().ToString();
    EXPECT_EQ(PlanToLine(**plan, w.model->registry()), base.line)
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(w.model->cost_model().Total((*plan)->cost()), base.cost)
        << "seed " << seed;
    if (suspended) {
      ++suspended_scenarios;
      EXPECT_GE(opt.stats().suspensions, 1u) << "seed " << seed;
      EXPECT_FALSE(opt.outcome().suspended) << "seed " << seed;
      EXPECT_FALSE(opt.CanResume()) << "seed " << seed;
    }
  }
  // The sweep is only meaningful if preemption actually happened at scale.
  EXPECT_GE(suspended_scenarios, 100);
}

// Repeated preemption: a probabilistic budget fault can trip the resumed run
// again (and again); each Resume() picks up where the last trip parked.
TEST(SuspendResume, SurvivesRepeatedPreemption) {
  rel::Workload w = MakeWorkload(7);
  PlanLine base = Uninterrupted(w);
  ASSERT_TRUE(base.ok);

  FaultInjector::Config fc;
  fc.seed = 99;
  fc.budget_expiry_prob = 0.02;
  FaultInjector injector(fc);
  SearchOptions opts;
  opts.suspend_on_trip = true;
  opts.fault = &injector;
  Optimizer opt(*w.model, SearchConfig::FromOptions(opts).value());

  StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
  int resumes = 0;
  while (!plan.ok() && opt.CanResume()) {
    plan = opt.Resume();
    ASSERT_LT(++resumes, 10000);
  }
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(PlanToLine(**plan, w.model->registry()), base.line);
  EXPECT_EQ(opt.stats().suspensions, static_cast<uint64_t>(resumes));
}

// A real (non-injected) call budget: each Resume() re-arms the per-call
// allowance, so a search too big for one slice completes across several.
TEST(SuspendResume, CallBudgetCompletesInSlices) {
  rel::Workload w = MakeWorkload(11);
  PlanLine base = Uninterrupted(w);
  ASSERT_TRUE(base.ok);

  SearchOptions opts;
  opts.suspend_on_trip = true;
  opts.budget.max_find_best_plan_calls = 20;
  Optimizer opt(*w.model, SearchConfig::FromOptions(opts).value());
  StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
  int resumes = 0;
  while (!plan.ok() && opt.CanResume()) {
    plan = opt.Resume();
    ASSERT_LT(++resumes, 10000);
  }
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GT(resumes, 0);
  EXPECT_EQ(PlanToLine(**plan, w.model->registry()), base.line);
}

// A memo-size trip cannot progress on the same budget; Resume(budget) raises
// the cap for the continuation.
TEST(SuspendResume, ResumeWithRaisedBudgetClearsMemoTrip) {
  rel::Workload w = MakeWorkload(13);
  PlanLine base = Uninterrupted(w);
  ASSERT_TRUE(base.ok);

  SearchOptions opts;
  opts.suspend_on_trip = true;
  opts.budget.max_mexprs = 8;
  Optimizer opt(*w.model, SearchConfig::FromOptions(opts).value());
  StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
  ASSERT_FALSE(plan.ok());
  ASSERT_TRUE(opt.CanResume());

  OptimizationBudget raised;  // default: effectively unlimited
  plan = opt.Resume(raised);
  int resumes = 0;
  while (!plan.ok() && opt.CanResume()) {
    plan = opt.Resume();
    ASSERT_LT(++resumes, 100);
  }
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(PlanToLine(**plan, w.model->registry()), base.line);
}

TEST(SuspendResume, ResumeWithoutSuspensionIsInvalid) {
  rel::Workload w = MakeWorkload(1);
  Optimizer opt(*w.model);
  EXPECT_FALSE(opt.CanResume());
  StatusOr<PlanPtr> r = opt.Resume();
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

// Starting a fresh Optimize abandons a suspended run cleanly: the frozen
// frames' in-progress marks are unwound and the new search is unaffected.
TEST(SuspendResume, FreshOptimizeAbandonsSuspendedRun) {
  rel::Workload w = MakeWorkload(17);
  PlanLine base = Uninterrupted(w);
  ASSERT_TRUE(base.ok);

  FaultInjector::Config fc;
  fc.seed = 17;
  fc.expire_budget_at = 5;
  FaultInjector injector(fc);
  SearchOptions opts;
  opts.suspend_on_trip = true;
  opts.fault = &injector;
  Optimizer opt(*w.model, SearchConfig::FromOptions(opts).value());
  StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
  ASSERT_FALSE(plan.ok());
  ASSERT_TRUE(opt.CanResume());

  // Re-optimize from scratch instead of resuming (the single-point fault is
  // already spent, so this run goes uninterrupted).
  plan = opt.Optimize(*w.query, w.required);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(opt.CanResume());
  EXPECT_EQ(PlanToLine(**plan, w.model->registry()), base.line);
}

// Big-join escalation + suspension: an above-threshold join installs
// override knobs (deadline, move limit, exploration cap) for the duration of
// the escalated call. A suspension mid-escalation must keep those overrides
// installed — Resume() continues the same escalated call — and hand the
// caller's own knobs back only when the call truly completes. (Regression:
// the overrides were once restored on the suspension return path, so the
// resumed search ran unbounded and diverged from the uninterrupted plan.)
TEST(SuspendResume, EscalationOverridesSurviveSuspension) {
  rel::WorkloadOptions wopts;
  wopts.num_relations = 25;  // far above join_seed_threshold (12)
  wopts.join_graph = rel::WorkloadOptions::JoinGraph::kChain;
  wopts.sorted_base_prob = 0.5;
  wopts.min_cardinality = 50;
  wopts.max_cardinality = 200;
  rel::Workload w = rel::GenerateWorkload(wopts, 21);

  SearchOptions opts;
  opts.join_seed = true;
  // A wide deterministic deadline: the escalation installs it, but the
  // explore-limit override bounds the search long before 60s of wall clock.
  opts.join_budget_ms = 60000.0;

  // Uninterrupted escalated reference.
  std::string base_line;
  {
    Optimizer opt(*w.model, SearchConfig::FromOptions(opts).value());
    StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    base_line = PlanToLine(**plan, w.model->registry());
    // Overrides are restored once the call completes.
    EXPECT_EQ(opt.options().move_limit, 0);
    EXPECT_EQ(opt.options().explore_limit, 0u);
    EXPECT_FALSE(opt.options().budget.has_deadline());
  }

  // Same search, preempted mid-escalation at a deterministic checkpoint.
  FaultInjector::Config fc;
  fc.seed = 21;
  fc.expire_budget_at = 40;
  FaultInjector injector(fc);
  SearchOptions suspending = opts;
  suspending.suspend_on_trip = true;
  suspending.fault = &injector;
  Optimizer opt(*w.model, SearchConfig::FromOptions(suspending).value());
  StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
  ASSERT_FALSE(plan.ok());
  ASSERT_TRUE(opt.CanResume());
  // While suspended the escalation overrides must still be installed: the
  // continuation runs under the same bounded knobs as the first slice.
  EXPECT_GT(opt.options().move_limit, 0);
  EXPECT_GT(opt.options().explore_limit, 0u);
  EXPECT_TRUE(opt.options().budget.has_deadline());

  int resumes = 0;
  while (!plan.ok() && opt.CanResume()) {
    plan = opt.Resume();
    ASSERT_LT(++resumes, 1000);
  }
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GE(opt.stats().suspensions, 1u);
  EXPECT_EQ(PlanToLine(**plan, w.model->registry()), base_line);
  // The call has completed: the caller's knobs are back.
  EXPECT_EQ(opt.options().move_limit, 0);
  EXPECT_EQ(opt.options().explore_limit, 0u);
  EXPECT_FALSE(opt.options().budget.has_deadline());
}

}  // namespace
}  // namespace volcano
