// plan_digest: deterministic plan-equivalence fingerprint over the
// query_gen workloads.
//
// Optimizes a fixed grid of generated workloads (chain joins of 2-10
// relations x several seeds, with and without ORDER BY) and prints one line
// per query with the chosen plan and its cost, plus an aggregate FNV-1a
// digest over all lines. Two builds of the optimizer are plan-equivalent iff
// their digests match; the perf-trajectory runner (tools/bench_report) uses
// this to prove that memo-layout work changed no optimization outcome.
//
// Usage:
//   plan_digest [--verbose] [--engine=task|recursive|best-first]
//               [--workers=N] [--join-seed] [--tpch]
//
// --engine and --workers select the search engine; every combination must
// print the same digest (tests/engine_differential_test.cc holds the
// committed value). --join-seed turns on greedy incumbent seeding
// (DESIGN.md §12), which is digest-preserving below the escalation
// threshold — the whole grid, so the flag must not change the digest
// either; tools/bench_report --join-scaling enforces this.
//
// --tpch swaps the generated-workload grid for the TPC-H-shaped SQL family
// (query_gen.h), going through ParseSql — so this digest also covers the
// front-end's translation, the unnesting/outer-join rules, and the
// DISTINCT/HAVING paths. It is a separate committed value with the same
// cross-engine invariance contract; tools/bench_report --tpch enforces it.
//
// Output (stdout):
//   <lines, only with --verbose>
//   digest: <16 hex digits>
//   queries: <count>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "relational/query_gen.h"
#include "relational/sql.h"
#include "search/optimizer.h"
#include "search/search_config.h"
#include "support/hash.h"

int main(int argc, char** argv) {
  using namespace volcano;
  bool verbose = false;
  bool tpch = false;
  SearchOptions base;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0) verbose = true;
    if (std::strcmp(argv[i], "--tpch") == 0) tpch = true;
    if (std::strcmp(argv[i], "--engine=recursive") == 0) {
      base.engine = SearchOptions::Engine::kRecursive;
    }
    if (std::strcmp(argv[i], "--engine=task") == 0) {
      base.engine = SearchOptions::Engine::kTask;
    }
    if (std::strcmp(argv[i], "--engine=best-first") == 0) {
      base.engine = SearchOptions::Engine::kBestFirst;
    }
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      base.workers = std::atoi(argv[i] + 10);
    }
    if (std::strcmp(argv[i], "--join-seed") == 0) {
      base.join_seed = true;
    }
  }

  uint64_t digest = 0xcbf29ce484222325ULL;
  int queries = 0;
  auto fold = [&](const std::string& line) {
    for (unsigned char c : line) {
      digest ^= c;
      digest *= 0x100000001b3ULL;
    }
    if (verbose) std::printf("%s\n", line.c_str());
  };

  if (tpch) {
    rel::TpchWorkload tw = rel::MakeTpchWorkload();
    for (const rel::TpchQuery& q : tw.queries) {
      StatusOr<rel::ParsedQuery> parsed =
          rel::ParseSql(q.sql, *tw.model, tw.catalog->symbols());
      std::string line = q.name;
      if (!parsed.ok()) {
        line += " status=" + parsed.status().ToString();
      } else {
        Optimizer opt(*tw.model, SearchConfig::FromOptions(base).value());
        StatusOr<PlanPtr> plan = opt.Optimize(*parsed->expr, parsed->required);
        if (!plan.ok()) {
          line += " status=" + plan.status().ToString();
        } else {
          line += " cost=" + tw.model->cost_model().ToString((*plan)->cost()) +
                  " plan=" + PlanToLine(**plan, tw.model->registry());
        }
      }
      fold(line);
      ++queries;
    }
    std::printf("digest: %016llx\n", static_cast<unsigned long long>(digest));
    std::printf("queries: %d\n", queries);
    return 0;
  }

  for (int order_by = 0; order_by <= 1; ++order_by) {
    for (int n = 2; n <= 10; ++n) {
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        rel::WorkloadOptions wopts;
        wopts.num_relations = n;
        wopts.join_graph = rel::WorkloadOptions::JoinGraph::kChain;
        wopts.hub_attr_prob = 0.25;
        wopts.sorted_base_prob = 0.5;
        wopts.order_by_prob = order_by ? 1.0 : 0.0;
        rel::Workload w = rel::GenerateWorkload(wopts, seed);

        Optimizer opt(*w.model, SearchConfig::FromOptions(base).value());
        StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
        std::string line = "n=" + std::to_string(n) +
                           " seed=" + std::to_string(seed) +
                           " order_by=" + std::to_string(order_by);
        if (!plan.ok()) {
          line += " status=" + plan.status().ToString();
        } else {
          line += " cost=" +
                  w.model->cost_model().ToString((*plan)->cost()) + " plan=" +
                  PlanToLine(**plan, w.model->registry());
        }
        fold(line);
        ++queries;
      }
    }
  }

  std::printf("digest: %016llx\n", static_cast<unsigned long long>(digest));
  std::printf("queries: %d\n", queries);
  return 0;
}
