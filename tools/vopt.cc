// vopt: command-line query optimizer.
//
// Usage:
//   vopt [options] "SQL"
//   vopt [options] --catalog schema.cat "SQL"
//   vopt serve [serve options]
//
// Exit codes (one-shot mode):
//   0  success
//   2  usage error (bad flags, missing SQL)
//   3  parse / semantic error (malformed SQL, unknown table or column,
//      malformed catalog file)
//   4  budget exhausted under --strict (RESOURCE_EXHAUSTED)
//   5  internal error (anything else)
//
// Serve mode (`vopt serve`) reads line-delimited requests from stdin and
// writes one JSON response per line to stdout until EOF or a `!quit` line
// (see src/serve/server.h for the protocol). Serve options:
//   --catalog FILE       as below
//   --serve-workers N    worker threads (default 1)
//   --search-workers N   intra-query search workers per session (default:
//                        single-threaded search)
//   --max-inflight N     admission cap; excess requests answered OVERLOADED
//   --cache-capacity N   plan-cache entries (0 disables)
//   --timeout-ms/--max-mexprs/--max-calls   per-request budget
//   --stats-in-response  append search stats JSON to cold plan responses
//   --stats-json         print final ServeStats JSON to stdout at shutdown
// Serve mode exits 0 after a clean drain; request-level failures are JSON
// error responses, never process exits.
//
// Options:
//   --catalog FILE   load a catalog description (see below)
//   --dot            print the plan as a Graphviz digraph
//   --memo           dump the memo after optimization
//   --stats          print search-effort counters
//   --stats-json     print effort counters, per-rule metrics, and the
//                    outcome as one JSON object on stdout
//   --explain        print the winning plan's lineage: the chain of
//                    implementation rules and enforcers that produced it,
//                    with per-step costs
//   --trace FILE     write the structured search trace (JSON-lines) to FILE
//                    ('-' = stdout); --trace=FILE also accepted
//   --execute SEED   generate data and run the plan
//   --timeout-ms N   optimization deadline; on expiry the engine returns the
//                    best plan found so far (anytime mode) or a fast
//                    heuristic plan instead of failing
//   --max-mexprs N   memo-expression budget (memory cap), same degradation
//   --max-calls N    FindBestPlan-call budget, same degradation
//   --strict         fail with RESOURCE_EXHAUSTED instead of degrading
//   --fallback       use the EXODUS baseline as a last resort when even the
//                    degradation ladder yields no plan
//   --engine E       search engine: 'task' (default; explicit task stack,
//                    suspendable, stack-safe), 'recursive' (Figure 2 run
//                    literally), or 'best-first' (global frontier ordered by
//                    adaptive promise; DESIGN.md §13); all three choose
//                    identical plans when best-first runs uncapped
//   --frontier-limit=N   best-first only: cap the frontier at N goals; the
//                    least promising goal is evicted (plan becomes
//                    approximate)
//   --memo-byte-limit=N  best-first only: hard cap on memo arena bytes;
//                    goals beyond the cap complete through the greedy
//                    descent (plan becomes approximate)
//   --workers N      task engine only: fan the root goal's moves across N
//                    worker threads; the chosen plan is identical to the
//                    single-threaded search (trace events carry worker ids)
//   --parallel-mode M  with --workers N > 1: 'deterministic' (default;
//                    bit-identical plans) or 'fast' (cross-move incumbent
//                    pruning; same plan cost, shape may vary run to run)
//   --join-seed=on|off  greedy join-order incumbent seeding (DESIGN.md §12):
//                    a heuristic join order is planned first and its cost
//                    tightens branch-and-bound from the first move; plans
//                    are unchanged wherever the exhaustive search completes
//   --join-threshold=N  joins of more than N relations escalate to the
//                    budgeted big-join mode (deadline + cardinality-guided
//                    move selection + capped exploration, seed as the
//                    guaranteed floor); default 12
//
// A budget trip can also suspend instead of degrading: with
// SearchOptions::suspend_on_trip (library API), the task stack freezes in
// place and Optimizer::Resume() — optionally with a fresh budget — continues
// the search from the exact preemption point.
//
// Catalog description format, one declaration per line ('#' comments):
//   relation <name> <cardinality> <tuple_bytes> <num_attrs>
//   distinct <attr> <count>          # e.g. distinct emp.a1 50
//   sorted <relation> <attr>...      # stored sort order
//
// Without --catalog, a small built-in demo schema (emp, dept) is used.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exec/datagen.h"
#include "exec/plan_exec.h"
#include "exodus/fallback.h"
#include "relational/sql.h"
#include "search/dot.h"
#include "search/explain.h"
#include "search/optimizer.h"
#include "search/search_config.h"
#include "search/trace_io.h"
#include "serve/server.h"
#include "support/metrics.h"

namespace {

using namespace volcano;

// Exit codes, documented in the header comment above.
enum ExitCode {
  kExitOk = 0,
  kExitUsage = 2,
  kExitParse = 3,
  kExitBudget = 4,
  kExitInternal = 5,
};

int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case Status::Code::kOk:
      return kExitOk;
    case Status::Code::kInvalidArgument:
    case Status::Code::kNotFound:
    case Status::Code::kAlreadyExists:
      return kExitParse;
    case Status::Code::kResourceExhausted:
      return kExitBudget;
    default:
      return kExitInternal;
  }
}

Status LoadCatalog(const std::string& path, rel::Catalog* catalog) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open catalog file " + path);

  // First pass collects relations; distinct/sorted lines may appear in any
  // order after their relation.
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind) || kind[0] == '#') continue;
    auto fail = [&](const std::string& msg) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": " + msg);
    };
    if (kind == "relation") {
      std::string name;
      double card, bytes;
      int nattrs;
      if (!(ls >> name >> card >> bytes >> nattrs)) {
        return fail("expected: relation <name> <card> <bytes> <num_attrs>");
      }
      StatusOr<Symbol> r = catalog->AddRelation(name, card, bytes, nattrs);
      if (!r.ok()) return fail(r.status().message());
    } else if (kind == "distinct") {
      std::string attr;
      double count;
      if (!(ls >> attr >> count)) {
        return fail("expected: distinct <attr> <count>");
      }
      Symbol sym = catalog->symbols().Lookup(attr);
      if (!catalog->RelationOf(sym).valid()) {
        return fail("unknown attribute " + attr);
      }
      Status s = catalog->SetDistinct(sym, count);
      if (!s.ok()) return fail(s.message());
    } else if (kind == "sorted") {
      std::string relname;
      if (!(ls >> relname)) return fail("expected: sorted <relation> <attr>+");
      Symbol rel = catalog->symbols().Lookup(relname);
      if (!rel.valid()) return fail("unknown relation " + relname);
      std::vector<Symbol> order;
      std::string attr;
      while (ls >> attr) {
        Symbol sym = catalog->symbols().Lookup(attr);
        if (!sym.valid()) return fail("unknown attribute " + attr);
        order.push_back(sym);
      }
      Status s = catalog->SetSortedOn(rel, order);
      if (!s.ok()) return fail(s.message());
    } else {
      return fail("unknown declaration '" + kind + "'");
    }
  }
  return Status::OK();
}

void BuiltinCatalog(rel::Catalog* catalog) {
  VOLCANO_CHECK(catalog->AddRelation("emp", 2000, 100, 3).ok());
  VOLCANO_CHECK(catalog->AddRelation("dept", 50, 100, 2).ok());
  VOLCANO_CHECK(catalog
                    ->SetSortedOn(catalog->symbols().Lookup("emp"),
                                  {catalog->symbols().Lookup("emp.a1")})
                    .ok());
}

int RunServe(int argc, char** argv) {
  std::string catalog_path;
  bool stats_json = false;
  serve::ServerOptions options;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--catalog" && i + 1 < argc) {
      catalog_path = argv[++i];
    } else if (arg == "--serve-workers" && i + 1 < argc) {
      options.workers = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--search-workers" && i + 1 < argc) {
      options.search_workers =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--max-inflight" && i + 1 < argc) {
      options.max_inflight = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--cache-capacity" && i + 1 < argc) {
      options.cache_capacity = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      options.budget.timeout_ms = std::strtod(argv[++i], nullptr);
    } else if (arg == "--max-mexprs" && i + 1 < argc) {
      options.budget.max_mexprs = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-calls" && i + 1 < argc) {
      options.budget.max_find_best_plan_calls =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--stats-in-response") {
      options.stats_in_response = true;
    } else if (arg == "--stats-json") {
      stats_json = true;
    } else {
      std::fprintf(stderr, "vopt serve: unknown option %s\n", arg.c_str());
      return kExitUsage;
    }
  }
  if (options.workers < 1) {
    std::fprintf(stderr, "vopt serve: --serve-workers must be >= 1\n");
    return kExitUsage;
  }
  {
    // Pre-validate the composed search knobs: the server constructor
    // re-checks and aborts, but a flag mistake should be a usage error.
    if (options.search_workers < 0) {
      std::fprintf(stderr,
                   "vopt serve: --search-workers must be >= 0, got %d\n",
                   options.search_workers);
      return kExitUsage;
    }
    volcano::SearchOptions composed = options.search;
    if (options.search_workers > 0) composed.workers = options.search_workers;
    volcano::Status s = volcano::ValidateSearchOptions(composed);
    if (!s.ok()) {
      std::fprintf(stderr, "vopt serve: %s\n", s.ToString().c_str());
      return kExitUsage;
    }
  }

  rel::Catalog catalog;
  if (!catalog_path.empty()) {
    Status s = LoadCatalog(catalog_path, &catalog);
    if (!s.ok()) {
      std::fprintf(stderr, "vopt serve: %s\n", s.ToString().c_str());
      return ExitCodeFor(s);
    }
  } else {
    BuiltinCatalog(&catalog);
  }

  serve::Server server(&catalog, options);
  server.Serve(std::cin, std::cout);
  if (stats_json) {
    std::printf("%s\n", server.stats().ToJson().c_str());
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "serve") {
    return RunServe(argc, argv);
  }
  std::string catalog_path;
  std::string sql;
  bool dot = false, memo = false, stats = false, execute = false;
  bool strict = false, fallback = false;
  bool stats_json = false, explain = false;
  std::string trace_path;
  uint64_t seed = 1;
  volcano::SearchOptions search_options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--catalog" && i + 1 < argc) {
      catalog_path = argv[++i];
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--memo") {
      memo = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--stats-json") {
      stats_json = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg == "--execute" && i + 1 < argc) {
      execute = true;
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      search_options.budget.timeout_ms = std::strtod(argv[++i], nullptr);
    } else if (arg == "--max-mexprs" && i + 1 < argc) {
      search_options.budget.max_mexprs =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-calls" && i + 1 < argc) {
      search_options.budget.max_find_best_plan_calls =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--strict") {
      strict = true;
      search_options.degradation =
          volcano::SearchOptions::Degradation::kStrict;
    } else if (arg == "--fallback") {
      fallback = true;
    } else if (arg == "--engine" && i + 1 < argc) {
      std::string engine = argv[++i];
      if (engine == "task") {
        search_options.engine = volcano::SearchOptions::Engine::kTask;
      } else if (engine == "recursive") {
        search_options.engine = volcano::SearchOptions::Engine::kRecursive;
      } else if (engine == "best-first") {
        search_options.engine = volcano::SearchOptions::Engine::kBestFirst;
      } else {
        std::fprintf(stderr, "vopt: unknown engine '%s'\n", engine.c_str());
        return 2;
      }
    } else if (arg == "--workers" && i + 1 < argc) {
      search_options.workers =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg.rfind("--frontier-limit=", 0) == 0) {
      search_options.frontier_limit = static_cast<size_t>(
          std::strtoull(arg.c_str() + std::strlen("--frontier-limit="),
                        nullptr, 10));
    } else if (arg.rfind("--memo-byte-limit=", 0) == 0) {
      search_options.memo_byte_limit = static_cast<size_t>(
          std::strtoull(arg.c_str() + std::strlen("--memo-byte-limit="),
                        nullptr, 10));
    } else if (arg == "--join-seed=on") {
      search_options.join_seed = true;
    } else if (arg == "--join-seed=off") {
      search_options.join_seed = false;
    } else if (arg.rfind("--join-threshold=", 0) == 0) {
      search_options.join_seed_threshold = static_cast<int>(
          std::strtol(arg.c_str() + std::strlen("--join-threshold="),
                      nullptr, 10));
    } else if (arg == "--parallel-mode" && i + 1 < argc) {
      std::string mode = argv[++i];
      if (mode == "deterministic") {
        search_options.parallel_mode =
            volcano::SearchOptions::ParallelMode::kDeterministic;
      } else if (mode == "fast") {
        search_options.parallel_mode =
            volcano::SearchOptions::ParallelMode::kFast;
      } else {
        std::fprintf(stderr, "vopt: unknown parallel mode '%s'\n",
                     mode.c_str());
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "vopt: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      sql = arg;
    }
  }
  if (sql.empty()) {
    std::fprintf(stderr,
                 "usage: vopt [--catalog FILE] [--dot] [--memo] [--stats] "
                 "[--stats-json] [--explain] [--trace FILE] "
                 "[--execute SEED] [--timeout-ms N] [--max-mexprs N] "
                 "[--max-calls N] [--strict] [--fallback] "
                 "[--engine task|recursive|best-first] [--workers N] "
                 "[--frontier-limit=N] [--memo-byte-limit=N] "
                 "[--parallel-mode deterministic|fast] "
                 "[--join-seed=on|off] [--join-threshold=N] \"SQL\"\n");
    return 2;
  }
  if (strict && fallback) {
    std::fprintf(stderr, "vopt: --strict and --fallback are exclusive\n");
    return 2;
  }

  volcano::rel::Catalog catalog;
  if (!catalog_path.empty()) {
    volcano::Status s = LoadCatalog(catalog_path, &catalog);
    if (!s.ok()) {
      std::fprintf(stderr, "vopt: %s\n", s.ToString().c_str());
      return ExitCodeFor(s);
    }
  } else {
    BuiltinCatalog(&catalog);
  }

  volcano::rel::RelModel model(catalog);
  volcano::StatusOr<volcano::rel::ParsedQuery> parsed =
      volcano::rel::ParseSql(sql, model, catalog.symbols());
  if (!parsed.ok()) {
    std::fprintf(stderr, "vopt: %s\n", parsed.status().ToString().c_str());
    return ExitCodeFor(parsed.status());
  }
  std::printf("algebra: %s\n", model.ExprToString(*parsed->expr).c_str());
  std::printf("required: %s\n", parsed->required->ToString().c_str());

  // The trace sink must outlive the optimizer (the memo holds a pointer).
  std::unique_ptr<std::ofstream> trace_file;
  std::unique_ptr<volcano::JsonTraceSink> trace_sink;
  if (!trace_path.empty()) {
#if !VOLCANO_TRACE_COMPILED_IN
    std::fprintf(stderr,
                 "vopt: built with -DVOLCANO_TRACE=OFF; --trace will emit "
                 "no events\n");
#endif
    if (trace_path == "-") {
      trace_sink = std::make_unique<volcano::JsonTraceSink>(std::cout);
    } else {
      trace_file = std::make_unique<std::ofstream>(trace_path);
      if (!*trace_file) {
        std::fprintf(stderr, "vopt: cannot open trace file %s\n",
                     trace_path.c_str());
        return kExitInternal;
      }
      trace_sink = std::make_unique<volcano::JsonTraceSink>(*trace_file);
    }
    search_options.trace = trace_sink.get();
  }

  volcano::StatusOr<volcano::SearchConfig> config =
      volcano::SearchConfig::FromOptions(search_options);
  if (!config.ok()) {
    std::fprintf(stderr, "vopt: %s\n", config.status().ToString().c_str());
    return 2;
  }
  volcano::Optimizer optimizer(model, *config);
  volcano::OptimizeOutcome outcome;
  volcano::StatusOr<volcano::PlanPtr> plan =
      fallback ? volcano::exodus::OptimizeWithFallback(
                     model, *parsed->expr, parsed->required, search_options,
                     &outcome)
               : optimizer.Optimize(*parsed->expr, parsed->required);
  if (!fallback) outcome = optimizer.outcome();
  if (!plan.ok()) {
    std::fprintf(stderr, "vopt: %s\n", plan.status().ToString().c_str());
    return ExitCodeFor(plan.status());
  }
  if (outcome.approximate) {
    std::printf("note: approximate plan (%s)\n", outcome.ToString().c_str());
  }
  std::printf("\nplan:\n%s",
              PlanToString(**plan, model.registry(), model.cost_model())
                  .c_str());

  if (dot) {
    std::printf("\n%s",
                PlanToDot(**plan, model.registry(), model.cost_model())
                    .c_str());
  }
  if (memo) {
    std::printf("\nmemo:\n%s", optimizer.memo().ToString().c_str());
  }
  if (explain) {
    std::printf("\n%s",
                ExplainPlan(**plan, model.registry(), model.cost_model())
                    .c_str());
  }
  if (stats) {
    std::printf("\nsearch effort:\n%s\n",
                optimizer.stats().ToString().c_str());
  }
  if (stats_json) {
    // In --fallback mode the plan may come from an internal optimizer whose
    // counters are not visible here; the outcome still reports provenance.
    std::printf("\n{\"stats\": %s, \"outcome\": %s, \"metrics\": %s}\n",
                optimizer.stats().ToJson().c_str(),
                outcome.ToJson().c_str(),
                MetricsToJson(optimizer.metrics()).c_str());
  }
  if (execute) {
    volcano::exec::Database db = volcano::exec::GenerateDatabase(catalog,
                                                                 seed);
    std::vector<volcano::exec::Row> rows =
        volcano::exec::ExecutePlan(**plan, model, db);
    std::printf("\nexecuted: %zu rows\n", rows.size());
    for (size_t i = 0; i < rows.size() && i < 10; ++i) {
      for (size_t j = 0; j < rows[i].size(); ++j) {
        std::printf("%s%lld", j ? "\t" : "", (long long)rows[i][j]);
      }
      std::printf("\n");
    }
    if (rows.size() > 10) std::printf("... (%zu more)\n", rows.size() - 10);
  }
  return 0;
}
