// Join-order scaling: greedy incumbent seeding and budgeted big-join search
// (DESIGN.md §12) over the chain/star/clique workload families at 10 to 100
// relations with skewed cardinalities.
//
// Two measurements, both emitted line-per-config for
// `tools/bench_report --join-scaling`:
//
//   join_seeding  — seeded vs unseeded wall clock at sizes where unseeded
//                   exhaustive search is still feasible (the classic Volcano
//                   regime, 10-12 relations). cost_ratio is seeded plan cost
//                   over unseeded optimal cost: 1.000 means seeding changed
//                   nothing but the clock.
//   join_budget   — plan quality vs budget at 25/50/100 relations, where
//                   exhaustive search is hopeless and the search runs under
//                   join_budget_ms with the greedy seed as the guaranteed
//                   floor. quality = greedy seed cost / returned plan cost
//                   (>= 1.000 exactly when the budgeted search improved on
//                   the seed).
//
// Usage: bench_join_scaling [queries_per_cell]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "relational/join_graph.h"
#include "relational/query_gen.h"
#include "search/optimizer.h"
#include "search/search_config.h"
#include "support/timer.h"

namespace volcano {
namespace {

using rel::WorkloadOptions;

const char* FamilyName(WorkloadOptions::JoinGraph family) {
  switch (family) {
    case WorkloadOptions::JoinGraph::kChain: return "chain";
    case WorkloadOptions::JoinGraph::kStar: return "star";
    case WorkloadOptions::JoinGraph::kClique: return "clique";
    case WorkloadOptions::JoinGraph::kRandomTree: return "random";
  }
  return "unknown";
}

rel::Workload MakeQuery(WorkloadOptions::JoinGraph family, int n,
                        uint64_t seed) {
  return rel::GenerateWorkload(rel::JoinScalingOptions(family, n),
                               9000u * static_cast<uint64_t>(n) + seed);
}

struct RunResult {
  double ms = 0.0;
  double cost = 0.0;
  PlanSource source = PlanSource::kExhaustive;
};

RunResult RunOne(const rel::Workload& w, const SearchOptions& so) {
  Optimizer opt(*w.model, SearchConfig::FromOptions(so).value());
  Timer t;
  StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
  RunResult r;
  r.ms = t.ElapsedMillis();
  if (!plan.ok()) {
    std::fprintf(stderr, "optimize failed: %s\n",
                 plan.status().ToString().c_str());
    std::exit(1);
  }
  r.cost = w.model->cost_model().Total((*plan)->cost());
  r.source = opt.outcome().source;
  return r;
}

/// Cost of the greedy seed plan alone (the budgeted search's floor).
double SeedCost(const rel::Workload& w) {
  ExprPtr reordered = rel::GreedyReorderQuery(*w.query, *w.model);
  if (reordered == nullptr) return 0.0;
  SearchOptions so;
  so.physical_only = true;
  Optimizer opt(*w.model, SearchConfig::FromOptions(so).value());
  StatusOr<PlanPtr> plan = opt.Optimize(*reordered, w.required);
  if (!plan.ok()) return 0.0;
  return w.model->cost_model().Total((*plan)->cost());
}

void SeedingSpeedup(int queries, WorkloadOptions::JoinGraph family, int n) {
  SearchOptions unseeded;
  SearchOptions seeded;
  seeded.join_seed = true;
  // The scaling deployment: above 10 relations the search escalates to the
  // budgeted big-join mode (cardinality-ordered moves, greedy floor).
  seeded.join_seed_threshold = 10;
  seeded.join_budget_ms = 250.0;

  double un_ms = 0.0, se_ms = 0.0, un_cost = 0.0, se_cost = 0.0;
  for (int q = 0; q < queries; ++q) {
    rel::Workload w = MakeQuery(family, n, static_cast<uint64_t>(q));
    RunResult u = RunOne(w, unseeded);
    RunResult s = RunOne(w, seeded);
    un_ms += u.ms;
    se_ms += s.ms;
    un_cost += u.cost;
    se_cost += s.cost;
  }
  std::printf(
      "join_seeding topology=%s n=%d unseeded_ms=%.3f seeded_ms=%.3f "
      "speedup=%.3f cost_ratio=%.4f\n",
      FamilyName(family), n, un_ms / queries, se_ms / queries,
      se_ms > 0.0 ? un_ms / se_ms : 0.0,
      un_cost > 0.0 ? se_cost / un_cost : 0.0);
}

void BudgetCurve(int queries, WorkloadOptions::JoinGraph family, int n,
                 double budget_ms) {
  SearchOptions so;
  so.join_seed = true;
  so.join_seed_threshold = 10;
  so.join_budget_ms = budget_ms;

  double ms = 0.0, quality = 0.0;
  int improved = 0;
  for (int q = 0; q < queries; ++q) {
    rel::Workload w = MakeQuery(family, n, static_cast<uint64_t>(q));
    const double seed_cost = SeedCost(w);
    RunResult r = RunOne(w, so);
    ms += r.ms;
    quality += seed_cost > 0.0 && r.cost > 0.0 ? seed_cost / r.cost : 1.0;
    if (r.cost < seed_cost * (1 - 1e-9)) ++improved;
  }
  std::printf(
      "join_budget topology=%s n=%d budget_ms=%.0f ms=%.3f quality=%.6g "
      "improved=%d/%d\n",
      FamilyName(family), n, budget_ms, ms / queries, quality / queries,
      improved, queries);
}

}  // namespace
}  // namespace volcano

int main(int argc, char** argv) {
  using volcano::rel::WorkloadOptions;
  int queries = argc > 1 ? std::atoi(argv[1]) : 5;

  std::printf("queries_per_cell: %d\n", queries);

  // Warm-up (allocator first-touch) outside the measured cells.
  {
    volcano::rel::Workload w =
        volcano::MakeQuery(WorkloadOptions::JoinGraph::kChain, 10, 99);
    volcano::SearchOptions so;
    (void)volcano::RunOne(w, so);
  }

  for (int n : {10, 12}) {
    volcano::SeedingSpeedup(queries, WorkloadOptions::JoinGraph::kChain, n);
    volcano::SeedingSpeedup(queries, WorkloadOptions::JoinGraph::kClique, n);
  }

  for (WorkloadOptions::JoinGraph family :
       {WorkloadOptions::JoinGraph::kChain, WorkloadOptions::JoinGraph::kStar,
        WorkloadOptions::JoinGraph::kClique}) {
    for (int n : {25, 50, 100}) {
      for (double budget_ms : {50.0, 250.0, 1000.0}) {
        volcano::BudgetCurve(queries, family, n, budget_ms);
      }
    }
  }
  return 0;
}
