// Best-first memory-bounded search: cost vs memory-cap sweep over the
// 54-workload plan-digest grid (chain joins of 2-10 relations x 3 seeds,
// with and without ORDER BY).
//
// Rows, one per cap, for `tools/bench_report --frontier`:
//
//   frontier_sweep kind=memo cap_bytes=<N|0> wall_ms=<f> total_cost=<f>
//       cost_ratio=<f> worst_ratio=<f> peak_arena=<N> approx=<k>/<q>
//       within_cap=<0|1>
//   frontier_sweep kind=frontier limit=<N|0> wall_ms=<f> total_cost=<f>
//       cost_ratio=<f> worst_ratio=<f> peak_frontier=<N> approx=<k>/<q>
//       within_cap=<0|1>
//
// cost_ratio is the sweep row's summed plan cost over the exhaustive task
// engine's summed cost (1.000 = no quality lost); worst_ratio is the worst
// single query. within_cap asserts every query's Memo::arena_bytes() stayed
// under the row's byte cap (trivially 1 for the frontier-limit rows, whose
// cap is entry count, not bytes). approx counts queries whose outcome was
// flagged approximate — with no cap set it must be 0/54.
//
// Usage: bench_frontier

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "relational/query_gen.h"
#include "search/optimizer.h"
#include "search/search_config.h"
#include "support/timer.h"

namespace volcano {
namespace {

std::vector<rel::Workload> MakeGrid() {
  std::vector<rel::Workload> grid;
  for (int order_by = 0; order_by <= 1; ++order_by) {
    for (int n = 2; n <= 10; ++n) {
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        rel::WorkloadOptions wopts;
        wopts.num_relations = n;
        wopts.join_graph = rel::WorkloadOptions::JoinGraph::kChain;
        wopts.hub_attr_prob = 0.25;
        wopts.sorted_base_prob = 0.5;
        wopts.order_by_prob = order_by ? 1.0 : 0.0;
        grid.push_back(rel::GenerateWorkload(wopts, seed));
      }
    }
  }
  return grid;
}

struct SweepRow {
  double wall_ms = 0.0;
  double total_cost = 0.0;
  double worst_ratio = 0.0;
  size_t peak_arena = 0;
  size_t peak_frontier = 0;
  int approx = 0;
  bool within_cap = true;
  int failed = 0;
};

SweepRow RunSweep(const std::vector<rel::Workload>& grid,
                  const std::vector<double>& base_costs,
                  const SearchOptions& so) {
  SweepRow row;
  Timer timer;
  for (size_t i = 0; i < grid.size(); ++i) {
    const rel::Workload& w = grid[i];
    Optimizer opt(*w.model, SearchConfig::FromOptions(so).value());
    StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
    if (!plan.ok()) {
      ++row.failed;
      continue;
    }
    double cost = w.model->cost_model().Total((*plan)->cost());
    row.total_cost += cost;
    if (base_costs[i] > 0.0) {
      row.worst_ratio = std::max(row.worst_ratio, cost / base_costs[i]);
    }
    if (opt.outcome().approximate) ++row.approx;
    row.peak_arena = std::max(row.peak_arena, opt.memo().arena_bytes());
    if (so.memo_byte_limit != 0 &&
        opt.memo().arena_bytes() > so.memo_byte_limit) {
      row.within_cap = false;
    }
  }
  row.wall_ms = timer.ElapsedMillis();
  return row;
}

int Run() {
  std::vector<rel::Workload> grid = MakeGrid();
  std::printf("queries: %d\n", static_cast<int>(grid.size()));

  // Exhaustive task-engine baseline costs.
  std::vector<double> base_costs;
  double base_total = 0.0;
  {
    SearchOptions task;
    task.engine = SearchOptions::Engine::kTask;
    for (const rel::Workload& w : grid) {
      Optimizer opt(*w.model, SearchConfig::FromOptions(task).value());
      StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
      if (!plan.ok()) {
        std::fprintf(stderr, "baseline query failed: %s\n",
                     plan.status().ToString().c_str());
        return 1;
      }
      base_costs.push_back(w.model->cost_model().Total((*plan)->cost()));
      base_total += base_costs.back();
    }
  }

  const size_t memo_caps[] = {0, 1u << 20, 512u << 10, 256u << 10,
                              128u << 10};
  for (size_t cap : memo_caps) {
    SearchOptions so;
    so.engine = SearchOptions::Engine::kBestFirst;
    so.memo_byte_limit = cap;
    SweepRow row = RunSweep(grid, base_costs, so);
    if (row.failed != 0) {
      std::fprintf(stderr, "memo cap %zu: %d queries failed\n", cap,
                   row.failed);
      return 1;
    }
    std::printf(
        "frontier_sweep kind=memo cap_bytes=%zu wall_ms=%.1f "
        "total_cost=%.1f cost_ratio=%.4f worst_ratio=%.4f peak_arena=%zu "
        "approx=%d/%d within_cap=%d\n",
        cap, row.wall_ms, row.total_cost, row.total_cost / base_total,
        row.worst_ratio, row.peak_arena, row.approx,
        static_cast<int>(grid.size()), row.within_cap ? 1 : 0);
  }

  // Scale rows: chains past the digest grid, where the memo genuinely
  // outgrows the caps and the cost-vs-memory tradeoff is non-trivial (the
  // grid's arenas fit inside 128 KiB, so grid caps are all-or-nothing).
  for (int n : {12, 14, 16}) {
    rel::WorkloadOptions wopts;
    wopts.num_relations = n;
    wopts.join_graph = rel::WorkloadOptions::JoinGraph::kChain;
    wopts.hub_attr_prob = 0.25;
    wopts.sorted_base_prob = 0.5;
    wopts.order_by_prob = 1.0;
    rel::Workload w = rel::GenerateWorkload(wopts, 1);
    double base_cost = 0.0;
    {
      SearchOptions task;
      task.engine = SearchOptions::Engine::kTask;
      Optimizer opt(*w.model, SearchConfig::FromOptions(task).value());
      StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
      if (!plan.ok()) {
        std::fprintf(stderr, "scale baseline n=%d failed: %s\n", n,
                     plan.status().ToString().c_str());
        return 1;
      }
      base_cost = w.model->cost_model().Total((*plan)->cost());
    }
    for (size_t cap : {size_t{0}, size_t{1u << 20}, size_t{512u << 10},
                       size_t{256u << 10}}) {
      SearchOptions so;
      so.engine = SearchOptions::Engine::kBestFirst;
      so.memo_byte_limit = cap;
      Timer timer;
      Optimizer opt(*w.model, SearchConfig::FromOptions(so).value());
      StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
      if (!plan.ok()) {
        std::fprintf(stderr, "scale n=%d cap=%zu failed: %s\n", n, cap,
                     plan.status().ToString().c_str());
        return 1;
      }
      double cost = w.model->cost_model().Total((*plan)->cost());
      std::printf(
          "frontier_scale n=%d cap_bytes=%zu wall_ms=%.1f cost_ratio=%.4f "
          "arena=%zu approx=%d within_cap=%d\n",
          n, cap, timer.ElapsedMillis(), cost / base_cost,
          opt.memo().arena_bytes(), opt.outcome().approximate ? 1 : 0,
          cap == 0 || opt.memo().arena_bytes() <= cap ? 1 : 0);
    }
  }

  const size_t frontier_limits[] = {256, 64, 16};
  for (size_t limit : frontier_limits) {
    SearchOptions so;
    so.engine = SearchOptions::Engine::kBestFirst;
    so.frontier_limit = limit;
    SweepRow row = RunSweep(grid, base_costs, so);
    if (row.failed != 0) {
      std::fprintf(stderr, "frontier limit %zu: %d queries failed\n", limit,
                   row.failed);
      return 1;
    }
    std::printf(
        "frontier_sweep kind=frontier limit=%zu wall_ms=%.1f "
        "total_cost=%.1f cost_ratio=%.4f worst_ratio=%.4f peak_arena=%zu "
        "approx=%d/%d within_cap=1\n",
        limit, row.wall_ms, row.total_cost, row.total_cost / base_total,
        row.worst_ratio, row.peak_arena, row.approx,
        static_cast<int>(grid.size()));
  }
  return 0;
}

}  // namespace
}  // namespace volcano

int main() { return volcano::Run(); }
