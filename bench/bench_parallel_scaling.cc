// Intra-query search scaling: wall-clock time to optimize the Figure-4
// 7-join workloads (8 input relations, one selection per relation, all bushy
// shapes reachable) at workers = 1 / 2 / 4 / 8, in both parallel modes.
//
// Deterministic mode must return byte-identical plans at every width (the
// committed plan digest enforces that); what this benchmark measures is how
// much wall clock the sharded memo + work-stealing scheduler actually buys.
// Output is machine-parsable line-per-config, consumed by
// `tools/bench_report --parallel-scaling`, which computes speedups and the
// CI guard (>= 2x at 4 workers on >= 4 cores).
//
// Usage: bench_parallel_scaling [queries] [relations]

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "relational/query_gen.h"
#include "search/optimizer.h"
#include "search/search_config.h"
#include "support/timer.h"

namespace volcano {
namespace {

std::vector<rel::Workload> MakeGrid(int queries, int relations) {
  std::vector<rel::Workload> grid;
  grid.reserve(static_cast<size_t>(queries));
  for (int q = 0; q < queries; ++q) {
    rel::WorkloadOptions wopts;
    wopts.num_relations = relations;
    wopts.sorted_base_prob = 0.5;
    wopts.order_by_prob = 0.25;
    grid.push_back(rel::GenerateWorkload(
        wopts, 1000u * static_cast<uint64_t>(relations) +
                   static_cast<uint64_t>(q)));
  }
  return grid;
}

double RunConfig(const std::vector<rel::Workload>& grid, int workers,
                 SearchOptions::ParallelMode mode) {
  SearchConfig config = SearchConfig::Builder()
                            .workers(workers)
                            .parallel_mode(mode)
                            .Build()
                            .value();
  double wall_ms = 0.0;
  for (const rel::Workload& w : grid) {
    Timer t;
    Optimizer opt(*w.model, config);
    StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
    wall_ms += t.ElapsedMillis();
    if (!plan.ok()) {
      std::fprintf(stderr, "optimize failed: %s\n",
                   plan.status().ToString().c_str());
      std::exit(1);
    }
  }
  return wall_ms;
}

}  // namespace
}  // namespace volcano

int main(int argc, char** argv) {
  int queries = 20;
  int relations = 8;  // 7 binary joins, the top Figure-4 complexity level
  if (argc > 1) queries = std::atoi(argv[1]);
  if (argc > 2) relations = std::atoi(argv[2]);

  std::printf("hardware_concurrency: %u\n",
              std::thread::hardware_concurrency());
  std::printf("queries: %d\n", queries);
  std::printf("relations: %d\n", relations);

  std::vector<volcano::rel::Workload> grid =
      volcano::MakeGrid(queries, relations);

  // One untimed warm-up pass so first-touch allocation noise lands outside
  // the measured configs.
  (void)volcano::RunConfig(grid, 1,
                           volcano::SearchOptions::ParallelMode::kDeterministic);

  // Single-worker deterministic search is the baseline for BOTH modes:
  // kFast refuses workers <= 1 by construction (there is no fast/serial),
  // and its pitch is beating that same serial wall clock.
  double base_ms = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    double wall_ms = volcano::RunConfig(
        grid, workers, volcano::SearchOptions::ParallelMode::kDeterministic);
    if (workers == 1) base_ms = wall_ms;
    std::printf("mode=deterministic workers=%d wall_ms=%.3f speedup=%.3f\n",
                workers, wall_ms, wall_ms > 0.0 ? base_ms / wall_ms : 0.0);
  }
  for (int workers : {2, 4, 8}) {
    double wall_ms = volcano::RunConfig(
        grid, workers, volcano::SearchOptions::ParallelMode::kFast);
    std::printf("mode=fast workers=%d wall_ms=%.3f speedup=%.3f\n", workers,
                wall_ms, wall_ms > 0.0 ? base_ms / wall_ms : 0.0);
  }
  return 0;
}
