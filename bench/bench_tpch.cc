// TPC-H-shaped decision-support benchmark: the query family of
// rel::MakeTpchWorkload (DESIGN.md §14) end to end — SQL text through
// ParseSql, the optimizer, plan validation, and iterator execution checked
// row-for-row against the naive logical evaluator.
//
// Two line families, both parsed by `tools/bench_report --tpch`:
//
//   tpch         — one line per query: optimize time, plan validity,
//                  optimized-vs-naive row parity (match=1 means the
//                  multisets agree after column reordering; DISTINCT
//                  queries dedup the oracle side first, since uniqueness
//                  is a *required property* the naive evaluator ignores),
//                  and execution wall clock.
//   tpch_unnest  — for each subquery-bearing query, the same plan executed
//                  with unnesting disabled (the only SUBQUERY
//                  implementation left is the quadratic NESTED_SUBQ — the
//                  naive correlated baseline) vs enabled. bench_report
//                  guards the mean speedup.
//
// Usage: bench_tpch [reps]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exec/datagen.h"
#include "exec/plan_exec.h"
#include "relational/query_gen.h"
#include "relational/rel_plan_cost.h"
#include "relational/rel_props.h"
#include "relational/sql.h"
#include "search/optimizer.h"
#include "search/search_config.h"
#include "support/timer.h"

namespace volcano {
namespace {

constexpr uint64_t kDataSeed = 20260;

struct Compiled {
  rel::ParsedQuery query;
  PlanPtr plan;
  double opt_ms = 0.0;
};

Compiled Compile(const rel::TpchWorkload& w, const rel::TpchQuery& q) {
  StatusOr<rel::ParsedQuery> parsed =
      rel::ParseSql(q.sql, *w.model, w.catalog->symbols());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: parse failed: %s\n", q.name.c_str(),
                 parsed.status().ToString().c_str());
    std::exit(1);
  }
  Compiled c;
  c.query = *parsed;
  Optimizer opt(*w.model);
  Timer t;
  StatusOr<PlanPtr> plan = opt.Optimize(*c.query.expr, c.query.required);
  c.opt_ms = t.ElapsedMillis();
  if (!plan.ok()) {
    std::fprintf(stderr, "%s: optimize failed: %s\n", q.name.c_str(),
                 plan.status().ToString().c_str());
    std::exit(1);
  }
  c.plan = *plan;
  return c;
}

double TimeExec(const PlanNode& plan, const rel::RelModel& model,
                const exec::Database& db, int reps) {
  Timer t;
  for (int r = 0; r < reps; ++r) {
    std::vector<exec::Row> rows = exec::ExecutePlan(plan, model, db);
    // Keep the optimizer from proving the drain dead.
    if (rows.size() == SIZE_MAX) std::abort();
  }
  return t.ElapsedMillis() / reps;
}

bool HasSubquery(const rel::TpchQuery& q) {
  return q.sql.find("(SELECT") != std::string::npos;
}

void RunFamily(int reps) {
  rel::TpchWorkload w = rel::MakeTpchWorkload();
  exec::Database db = exec::GenerateDatabase(*w.catalog, kDataSeed);

  // Ablation twin: unnesting off, so every SUBQUERY runs as NESTED_SUBQ.
  rel::RelModelOptions nested_opts;
  nested_opts.enable_unnest_subqueries = false;
  rel::TpchWorkload nested = rel::MakeTpchWorkload(nested_opts);
  exec::Database nested_db = exec::GenerateDatabase(*nested.catalog, kDataSeed);

  for (size_t i = 0; i < w.queries.size(); ++i) {
    const rel::TpchQuery& q = w.queries[i];
    Compiled c = Compile(w, q);

    bool valid = rel::ValidatePlan(*c.plan, *w.model).ok();

    std::vector<exec::Row> got = exec::ExecutePlan(*c.plan, *w.model, db);
    std::vector<exec::Row> want = exec::EvalLogical(*c.query.expr, *w.model, db);
    exec::Schema gs = exec::PlanSchema(*c.plan, *w.model, db);
    exec::Schema ws = exec::LogicalSchema(*c.query.expr, *w.model, db);
    const auto* rp = dynamic_cast<const rel::RelPhysProps*>(c.query.required.get());
    if (rp != nullptr && rp->unique()) {
      std::sort(want.begin(), want.end());
      want.erase(std::unique(want.begin(), want.end()), want.end());
    }
    bool match = exec::SameMultiset(exec::ReorderToSchema(got, gs, ws), want);

    double exec_ms = TimeExec(*c.plan, *w.model, db, reps);
    std::printf(
        "tpch query=%s valid=%d match=%d rows=%zu opt_ms=%.3f exec_ms=%.3f\n",
        q.name.c_str(), valid ? 1 : 0, match ? 1 : 0, got.size(), c.opt_ms,
        exec_ms);

    if (!HasSubquery(q)) continue;
    Compiled nc = Compile(nested, nested.queries[i]);
    bool nested_valid = rel::ValidatePlan(*nc.plan, *nested.model).ok();
    double nested_ms = TimeExec(*nc.plan, *nested.model, nested_db, reps);
    std::printf(
        "tpch_unnest query=%s nested_valid=%d nested_ms=%.3f unnested_ms=%.3f "
        "speedup=%.2f\n",
        q.name.c_str(), nested_valid ? 1 : 0, nested_ms, exec_ms,
        exec_ms > 0.0 ? nested_ms / exec_ms : 0.0);
  }
}

}  // namespace
}  // namespace volcano

int main(int argc, char** argv) {
  int reps = argc > 1 ? std::atoi(argv[1]) : 5;
  std::printf("reps: %d\n", reps);
  volcano::RunFamily(reps);
  return 0;
}
