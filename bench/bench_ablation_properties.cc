// Ablation B: property-directed search vs optimize-then-glue.
//
// Sections 5 and 6 of the paper argue that Volcano's handling of physical
// properties — requirements drive the search; enforcer costs are subtracted
// from the branch-and-bound limit — dominates Starburst's approach of
// optimizing first and patching "glue" operators onto the plan afterwards.
// This bench runs the Figure 4 workload with ORDER BY requirements in both
// modes and reports plan quality (estimated execution time) and
// optimization time.

#include <cstdio>
#include <cstdlib>

#include "relational/query_gen.h"
#include "relational/rel_plan_cost.h"
#include "search/optimizer.h"
#include "search/search_config.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace volcano;
  int queries = argc > 1 ? std::atoi(argv[1]) : 25;
  int max_relations = argc > 2 ? std::atoi(argv[2]) : 8;

  std::printf(
      "Ablation B: property-directed search vs optimize-then-glue "
      "(Starburst-style); ORDER BY on every query, %d queries/level\n\n",
      queries);
  std::printf(
      "rels | directed-exec-s  glue-exec-s   quality | directed-ms  glue-ms\n"
      "-----+--------------------------------------- +--------------------\n");

  for (int n = 2; n <= max_relations; ++n) {
    double dir_exec = 0, glue_exec = 0, dir_ms = 0, glue_ms = 0;
    int worse = 0;
    for (int q = 0; q < queries; ++q) {
      rel::WorkloadOptions wopts;
      wopts.num_relations = n;
      wopts.sorted_base_prob = 0.7;
      wopts.order_by_prob = 1.0;
      wopts.hub_attr_prob = 0.7;
      rel::Workload w = rel::GenerateWorkload(
          wopts, 3000u * n + static_cast<uint64_t>(q));

      Timer t1;
      Optimizer directed(*w.model);
      StatusOr<PlanPtr> pd = directed.Optimize(*w.query, w.required);
      dir_ms += t1.ElapsedMillis();

      SearchOptions glue_opts;
      glue_opts.glue_properties = true;
      Timer t2;
      Optimizer glued(*w.model, SearchConfig::FromOptions(glue_opts).value());
      StatusOr<PlanPtr> pg = glued.Optimize(*w.query, w.required);
      glue_ms += t2.ElapsedMillis();

      if (!pd.ok() || !pg.ok()) {
        std::fprintf(stderr, "optimization failed\n");
        return 1;
      }
      double d = w.model->cost_model().Total(rel::RecostPlan(**pd, *w.model));
      double g = w.model->cost_model().Total(rel::RecostPlan(**pg, *w.model));
      dir_exec += d;
      glue_exec += g;
      if (g > d * (1 + 1e-9)) ++worse;
    }
    std::printf("%4d | %15.4f %12.4f %6.2fx   | %11.3f %8.3f   (glue worse on "
                "%d/%d)\n",
                n, dir_exec / queries, glue_exec / queries,
                glue_exec / dir_exec, dir_ms / queries, glue_ms / queries,
                worse, queries);
  }
  std::printf(
      "\nExpected: glue plans are never cheaper and lose whenever an\n"
      "interesting order could have been produced en passant (merge joins,\n"
      "stored sort orders); the gap widens with hub-heavy, ordered "
      "queries.\n");
  return 0;
}
