// Ablation C: heuristic guidance — pursuing only the most promising moves.
//
// "After all possible moves have been generated and assessed, the most
// promising moves are pursued. Currently, with only exhaustive search
// implemented, all moves are pursued. In the future, a subset of the moves
// will be selected ... Pursuing all moves or only a selected few is a major
// heuristic placed into the hands of the optimizer implementor."
// (paper, section 3). This bench sweeps the move limit and reports the
// trade-off between optimization effort and plan quality.

#include <cstdio>
#include <cstdlib>

#include "relational/query_gen.h"
#include "relational/rel_plan_cost.h"
#include "search/optimizer.h"
#include "search/search_config.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace volcano;
  int queries = argc > 1 ? std::atoi(argv[1]) : 25;
  int max_relations = argc > 2 ? std::atoi(argv[2]) : 8;
  const int kLimits[] = {0, 1, 2, 4};  // 0 = exhaustive

  std::printf(
      "Ablation C: move limit k (0 = exhaustive). Cells: avg optimization "
      "ms / plan cost relative to exhaustive; %d queries/level\n\n",
      queries);
  std::printf("rels |");
  for (int k : kLimits) std::printf("        k=%-8d", k);
  std::printf("\n-----+------------------------------------------------------"
              "----------\n");

  for (int n = 2; n <= max_relations; ++n) {
    double ms[4] = {0, 0, 0, 0};
    double exec[4] = {0, 0, 0, 0};
    int failed[4] = {0, 0, 0, 0};
    for (int q = 0; q < queries; ++q) {
      rel::WorkloadOptions wopts;
      wopts.num_relations = n;
      wopts.sorted_base_prob = 0.5;
      wopts.order_by_prob = 0.25;
      rel::Workload w = rel::GenerateWorkload(
          wopts, 4000u * n + static_cast<uint64_t>(q));
      for (int c = 0; c < 4; ++c) {
        SearchOptions opts;
        opts.move_limit = kLimits[c];
        Timer t;
        Optimizer opt(*w.model, SearchConfig::FromOptions(opts).value());
        StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
        ms[c] += t.ElapsedMillis();
        if (!plan.ok()) {
          ++failed[c];  // a too-aggressive limit can make a goal infeasible
          continue;
        }
        exec[c] +=
            w.model->cost_model().Total(rel::RecostPlan(**plan, *w.model));
      }
    }
    std::printf("%4d |", n);
    for (int c = 0; c < 4; ++c) {
      int done = queries - failed[c];
      double rel_quality =
          done > 0 && exec[0] > 0
              ? (exec[c] / done) / (exec[0] / queries)
              : 0.0;
      std::printf(" %7.3fms %5.2fx%s", ms[c] / queries, rel_quality,
                  failed[c] ? "!" : " ");
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected: smaller k cuts optimization time but can degrade plan\n"
      "quality ('!' marks levels where some queries became infeasible under\n"
      "the limit). k=0 reproduces exhaustive search.\n");
  return 0;
}
