// Serving-loop benchmarks (google-benchmark): request throughput and
// latency through the full serve path (normalize -> parse -> cache ->
// optimize -> render), the plan cache's hit speedup, and a QPS / p50 / p99 /
// hit-rate profile over a mixed workload — the numbers recorded in
// BENCH_6.json. Excluded from the bench-smoke CI trajectory (that job runs
// bench_micro only).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "relational/catalog.h"
#include "serve/server.h"

namespace volcano::serve {
namespace {

void FillCatalog(rel::Catalog* catalog) {
  VOLCANO_CHECK(
      catalog->AddRelation("emp", 2000, 100, 3, {2000, 50, 10}).ok());
  VOLCANO_CHECK(catalog->AddRelation("dept", 50, 100, 2, {50, 5}).ok());
  VOLCANO_CHECK(catalog->AddRelation("loc", 10, 100, 2, {10, 10}).ok());
}

const char* const kMix[] = {
    "SELECT * FROM emp",
    "SELECT * FROM emp WHERE emp.a1 < 100",
    "SELECT * FROM emp WHERE emp.a2 = 7 ORDER BY emp.a1",
    "SELECT * FROM emp, dept WHERE emp.a2 = dept.a0",
    "SELECT * FROM emp, dept WHERE emp.a2 = dept.a0 ORDER BY emp.a1",
    "SELECT * FROM emp, dept, loc "
    "WHERE emp.a2 = dept.a0 AND dept.a1 = loc.a0",
    "SELECT emp.a1, count(*) FROM emp GROUP BY emp.a1",
};

/// One cold request end to end (cache disabled): the serving floor.
void BM_ServeRequestCold(benchmark::State& state) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  ServerOptions options;
  options.cache_capacity = 0;
  Server server(&catalog, options);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        server.HandleLine(kMix[i++ % std::size(kMix)]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeRequestCold);

/// The same mix with the cache on: after the first lap every request hits.
void BM_ServeRequestCached(benchmark::State& state) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  Server server(&catalog);
  for (const char* sql : kMix) server.HandleLine(sql);  // warm the cache
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        server.HandleLine(kMix[i++ % std::size(kMix)]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeRequestCached);

/// The serve profile: a fixed mixed stream (90% repeat traffic, 10%
/// cache-busting constants) through one server; reports QPS, p50/p99
/// request latency, and the cache hit rate as counters.
void BM_ServeMixedProfile(benchmark::State& state) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  Server server(&catalog);
  std::vector<double> latencies_us;
  uint64_t requests = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string line;
    if (requests % 10 == 9) {
      // Unique constant: forced miss (selectivity-bearing signature).
      line = "SELECT * FROM emp WHERE emp.a1 < " +
             std::to_string(100 + requests);
    } else {
      line = kMix[requests % std::size(kMix)];
    }
    auto start = std::chrono::steady_clock::now();
    state.ResumeTiming();
    benchmark::DoNotOptimize(server.HandleLine(std::move(line)));
    state.PauseTiming();
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count());
    ++requests;
    state.ResumeTiming();
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  if (!latencies_us.empty()) {
    state.counters["p50_us"] = latencies_us[latencies_us.size() / 2];
    state.counters["p99_us"] = latencies_us[latencies_us.size() * 99 / 100];
  }
  ServeStats stats = server.stats();
  uint64_t probes = stats.cache_hits + stats.cache_misses;
  state.counters["hit_rate"] =
      probes ? double(stats.cache_hits) / double(probes) : 0.0;
  state.counters["qps"] =
      benchmark::Counter(double(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeMixedProfile);

/// Cache-churn robustness: every 64th request bumps the catalog, forcing
/// invalidation + model rebuilds; measures the serving cost under DDL churn.
void BM_ServeUnderCatalogChurn(benchmark::State& state) {
  rel::Catalog catalog;
  FillCatalog(&catalog);
  Server server(&catalog);
  uint64_t requests = 0;
  for (auto _ : state) {
    if (requests % 64 == 63) server.BumpCatalog();
    benchmark::DoNotOptimize(
        server.HandleLine(kMix[requests % std::size(kMix)]));
    ++requests;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeUnderCatalogChurn);

}  // namespace
}  // namespace volcano::serve

BENCHMARK_MAIN();
