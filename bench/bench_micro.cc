// Micro-benchmarks (google-benchmark): the building blocks of the search —
// memo insertion/deduplication, exploration (transformation closure),
// winner-table probing, symbol interning, and FindBestPlan as a function of
// query size. These are the perf-trajectory benchmarks: tools/bench_report
// runs this suite with --benchmark_format=json and folds the numbers into
// the committed BENCH_<n>.json files.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "relational/query_gen.h"
#include "search/optimizer.h"
#include "search/search_config.h"
#include "support/intern.h"

namespace volcano {
namespace {

rel::Workload MakeChain(int relations, uint64_t seed) {
  rel::WorkloadOptions wopts;
  wopts.num_relations = relations;
  wopts.join_graph = rel::WorkloadOptions::JoinGraph::kChain;
  wopts.hub_attr_prob = 0.0;
  wopts.sorted_base_prob = 0.5;
  return rel::GenerateWorkload(wopts, seed);
}

void BM_MemoInsertQuery(benchmark::State& state) {
  rel::Workload w = MakeChain(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    Memo memo(*w.model);
    benchmark::DoNotOptimize(memo.InsertQuery(*w.query));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.query->TreeSize()));
}
BENCHMARK(BM_MemoInsertQuery)->DenseRange(2, 10, 2);

void BM_MemoDuplicateDetection(benchmark::State& state) {
  // Second insertion of the same tree exercises only the hash-consing path.
  rel::Workload w = MakeChain(static_cast<int>(state.range(0)), 2);
  Memo memo(*w.model);
  memo.InsertQuery(*w.query);
  for (auto _ : state) {
    benchmark::DoNotOptimize(memo.InsertQuery(*w.query));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.query->TreeSize()));
}
BENCHMARK(BM_MemoDuplicateDetection)->DenseRange(2, 10, 2);

void BM_Exploration(benchmark::State& state) {
  // Full transformation closure of the root class (no implementation work):
  // insert + optimize with an impossible property so only exploration runs.
  int n = static_cast<int>(state.range(0));
  rel::Workload w = MakeChain(n, 3);
  for (auto _ : state) {
    Optimizer opt(*w.model);
    StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_Exploration)->DenseRange(2, 10, 2)->Unit(benchmark::kMicrosecond);

void BM_FindBestPlanWarmMemo(benchmark::State& state) {
  // Re-optimizing an already-optimized goal measures the pure look-up path
  // ("if the pair LogExpr and PhysProp is in the look-up table ...").
  rel::Workload w = MakeChain(static_cast<int>(state.range(0)), 4);
  Optimizer opt(*w.model);
  GroupId root = opt.AddQuery(*w.query);
  VOLCANO_CHECK(opt.OptimizeGroup(root, w.required).ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.OptimizeGroup(root, w.required).ok());
  }
}
BENCHMARK(BM_FindBestPlanWarmMemo)->DenseRange(2, 10, 2);

void BM_WinnerProbe(benchmark::State& state) {
  // The raw winner-table probe under a fixed goal: the innermost operation
  // of every FindBestPlan call (and of every memoized-failure cutoff).
  rel::Workload w = MakeChain(6, 4);
  Optimizer opt(*w.model);
  GroupId root = opt.AddQuery(*w.query);
  VOLCANO_CHECK(opt.OptimizeGroup(root, w.required).ok());
  GoalKey key{w.required, nullptr};
  const Memo& memo = opt.memo();
  for (auto _ : state) {
    benchmark::DoNotOptimize(memo.FindWinner(root, key));
  }
}
BENCHMARK(BM_WinnerProbe);

void BM_OptimizeOrderBy(benchmark::State& state) {
  // End-to-end optimization with an ORDER BY requirement (enforcers and
  // excluding property vectors on the hot path).
  int n = static_cast<int>(state.range(0));
  rel::WorkloadOptions wopts;
  wopts.num_relations = n;
  wopts.order_by_prob = 1.0;
  wopts.sorted_base_prob = 0.5;
  rel::Workload w = rel::GenerateWorkload(wopts, 5);
  for (auto _ : state) {
    Optimizer opt(*w.model);
    benchmark::DoNotOptimize(opt.Optimize(*w.query, w.required).ok());
  }
}
BENCHMARK(BM_OptimizeOrderBy)->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_OptimizeEngine(benchmark::State& state) {
  // The explicit task engine (arg=1) against the recursive Figure-2 baseline
  // (arg=0) on the same end-to-end search: the cost of frame dispatch and
  // pooling versus native call frames. The two must stay within noise of
  // each other — the task engine replicates the recursive control flow site
  // for site.
  rel::Workload w = MakeChain(8, 6);
  SearchOptions options;
  options.engine = state.range(0) == 0 ? SearchOptions::Engine::kRecursive
                                       : SearchOptions::Engine::kTask;
  for (auto _ : state) {
    Optimizer opt(*w.model, SearchConfig::FromOptions(options).value());
    benchmark::DoNotOptimize(opt.Optimize(*w.query, w.required).ok());
  }
}
BENCHMARK(BM_OptimizeEngine)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_OptimizeParallel(benchmark::State& state) {
  // Scaling curve for the worker-pool fan-out (arg = SearchOptions::workers;
  // 0 = no pool). Wall clock, not main-thread CPU: the work happens on the
  // pool threads, so cpu_time would under-report by exactly the offloaded
  // share. The v1 fan-out serializes move evaluation under one engine mutex
  // plus a determinism turnstile, so this curve is flat by design — it pins
  // the thread-pool and synchronization overhead that finer-grained memo
  // sharding must beat before parallelism can pay off.
  rel::Workload w = MakeChain(8, 6);
  SearchOptions options;
  options.workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Optimizer opt(*w.model, SearchConfig::FromOptions(options).value());
    benchmark::DoNotOptimize(opt.Optimize(*w.query, w.required).ok());
  }
}
BENCHMARK(BM_OptimizeParallel)->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

void BM_OptimizeTraced(benchmark::State& state) {
  // Tracing overhead: the same end-to-end optimization as BM_Exploration's
  // shape with (arg=1) and without (arg=0) a minimal sink attached. The
  // arg=0 row is the null-sink hot path — one pointer test per would-be
  // event — and must stay indistinguishable from an untraced build; the
  // delta to arg=1 is the cost of materializing every event.
  class CountingSink final : public TraceSink {
   public:
    void OnEvent(const TraceEvent& event) override {
      benchmark::DoNotOptimize(&event);
      ++count_;
    }
    uint64_t count() const { return count_; }

   private:
    uint64_t count_ = 0;
  };

  rel::Workload w = MakeChain(6, 3);
  CountingSink sink;
  SearchOptions options;
  if (state.range(0) != 0) options.trace = &sink;
  uint64_t events = 0;
  for (auto _ : state) {
    Optimizer opt(*w.model, SearchConfig::FromOptions(options).value());
    benchmark::DoNotOptimize(opt.Optimize(*w.query, w.required).ok());
  }
  events = sink.count();
  state.counters["events"] = static_cast<double>(
      state.iterations() == 0 ? 0 : events / state.iterations());
}
BENCHMARK(BM_OptimizeTraced)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_SymbolIntern(benchmark::State& state) {
  // Hit-path interning with identifiers long enough to defeat the small
  // string optimization: a std::string round-trip per probe shows up here.
  SymbolTable table;
  std::vector<std::string> names;
  for (int i = 0; i < 64; ++i) {
    names.push_back("relation_" + std::to_string(i) + ".attribute_" +
                    std::to_string(i));
  }
  for (const std::string& n : names) table.Intern(n);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Intern(std::string_view(names[i & 63])));
    ++i;
  }
}
BENCHMARK(BM_SymbolIntern);

void BM_SymbolLookupMiss(benchmark::State& state) {
  // Probing for absent identifiers (the Lookup path used by catalogs and the
  // SQL front end) must not allocate either.
  SymbolTable table;
  for (int i = 0; i < 64; ++i) {
    table.Intern("relation_" + std::to_string(i) + ".attribute_" +
                 std::to_string(i));
  }
  std::vector<std::string> misses;
  for (int i = 0; i < 64; ++i) {
    misses.push_back("relation_" + std::to_string(i) + ".absent_attribute_" +
                     std::to_string(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Lookup(std::string_view(misses[i & 63])).valid());
    ++i;
  }
}
BENCHMARK(BM_SymbolLookupMiss);

}  // namespace
}  // namespace volcano

BENCHMARK_MAIN();
