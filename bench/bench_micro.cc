// Micro-benchmarks (google-benchmark): the building blocks of the search —
// memo insertion/deduplication, exploration (transformation closure),
// pattern matching, and FindBestPlan as a function of query size.

#include <benchmark/benchmark.h>

#include "relational/query_gen.h"
#include "search/optimizer.h"

namespace volcano {
namespace {

rel::Workload MakeChain(int relations, uint64_t seed) {
  rel::WorkloadOptions wopts;
  wopts.num_relations = relations;
  wopts.hub_attr_prob = 0.0;
  wopts.sorted_base_prob = 0.5;
  return rel::GenerateWorkload(wopts, seed);
}

void BM_MemoInsertQuery(benchmark::State& state) {
  rel::Workload w = MakeChain(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    Memo memo(*w.model);
    benchmark::DoNotOptimize(memo.InsertQuery(*w.query));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.query->TreeSize()));
}
BENCHMARK(BM_MemoInsertQuery)->Arg(2)->Arg(4)->Arg(8);

void BM_MemoDuplicateDetection(benchmark::State& state) {
  // Second insertion of the same tree exercises only the hash-consing path.
  rel::Workload w = MakeChain(8, 2);
  Memo memo(*w.model);
  memo.InsertQuery(*w.query);
  for (auto _ : state) {
    benchmark::DoNotOptimize(memo.InsertQuery(*w.query));
  }
}
BENCHMARK(BM_MemoDuplicateDetection);

void BM_Exploration(benchmark::State& state) {
  // Full transformation closure of the root class (no implementation work):
  // insert + optimize with an impossible property so only exploration runs.
  int n = static_cast<int>(state.range(0));
  rel::Workload w = MakeChain(n, 3);
  for (auto _ : state) {
    Optimizer opt(*w.model);
    StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_Exploration)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_FindBestPlanWarmMemo(benchmark::State& state) {
  // Re-optimizing an already-optimized goal measures the pure look-up path
  // ("if the pair LogExpr and PhysProp is in the look-up table ...").
  rel::Workload w = MakeChain(6, 4);
  Optimizer opt(*w.model);
  GroupId root = opt.AddQuery(*w.query);
  VOLCANO_CHECK(opt.OptimizeGroup(root, w.required).ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.OptimizeGroup(root, w.required).ok());
  }
}
BENCHMARK(BM_FindBestPlanWarmMemo);

void BM_OptimizeOrderBy(benchmark::State& state) {
  // End-to-end optimization with an ORDER BY requirement (enforcers and
  // excluding property vectors on the hot path).
  int n = static_cast<int>(state.range(0));
  rel::WorkloadOptions wopts;
  wopts.num_relations = n;
  wopts.order_by_prob = 1.0;
  wopts.sorted_base_prob = 0.5;
  rel::Workload w = rel::GenerateWorkload(wopts, 5);
  for (auto _ : state) {
    Optimizer opt(*w.model);
    benchmark::DoNotOptimize(opt.Optimize(*w.query, w.required).ok());
  }
}
BENCHMARK(BM_OptimizeOrderBy)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

}  // namespace
}  // namespace volcano

BENCHMARK_MAIN();
