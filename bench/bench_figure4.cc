// Figure 4 reproduction: "Exhaustive Optimization Performance".
//
// The paper optimizes 50 random relational select-join queries per
// complexity level (1 to 7 binary joins = 2 to 8 input relations, one
// selection per input relation, all bushy shapes reachable) with both the
// Volcano-generated and the EXODUS-generated optimizer, and reports (a) the
// average optimization time and (b) the average estimated execution time of
// the produced plans, on logarithmic axes. Expected shapes:
//   * Volcano optimization effort grows ~exponentially (a straight line on
//     the log axis), mirroring the count of equivalent logical expressions;
//   * EXODUS is roughly an order of magnitude slower for complex queries,
//     with a knee around 4 input relations where reanalysis starts to
//     dominate, and aborts on some complex queries (node cap = the paper's
//     "lack of memory"); aborted runs are excluded from the averages, as in
//     the paper ("the data points represent only those queries for which the
//     EXODUS optimizer generator completed");
//   * plan quality is equal for moderately complex queries but
//     significantly worse for EXODUS beyond ~4 relations, because EXODUS
//     does not exploit physical properties and interesting orderings.
//
// Plan quality is compared apples-to-apples: both optimizers' plans are
// re-costed bottom-up with the same relational cost model.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "exodus/exodus_optimizer.h"
#include "relational/query_gen.h"
#include "relational/rel_plan_cost.h"
#include "search/optimizer.h"
#include "support/timer.h"

namespace volcano {
namespace {

struct LevelResult {
  int relations = 0;
  int queries = 0;
  double volcano_opt_ms = 0;
  double exodus_opt_ms = 0;
  double volcano_exec_s = 0;
  double exodus_exec_s = 0;
  double volcano_mexprs = 0;
  double exodus_nodes = 0;
  int exodus_aborts = 0;
  int completed = 0;  // queries where EXODUS completed
};

LevelResult RunLevel(int relations, int queries, uint64_t seed_base) {
  LevelResult out;
  out.relations = relations;
  out.queries = queries;

  for (int q = 0; q < queries; ++q) {
    rel::WorkloadOptions wopts;
    wopts.num_relations = relations;
    wopts.sorted_base_prob = 0.5;
    wopts.order_by_prob = 0.25;
    rel::Workload w =
        rel::GenerateWorkload(wopts, seed_base + static_cast<uint64_t>(q));

    // --- Volcano ------------------------------------------------------------
    Timer t1;
    Optimizer volcano(*w.model);
    StatusOr<PlanPtr> vplan = volcano.Optimize(*w.query, w.required);
    double vms = t1.ElapsedMillis();
    if (!vplan.ok()) {
      std::fprintf(stderr, "volcano failed: %s\n",
                   vplan.status().ToString().c_str());
      continue;
    }
    double vexec =
        w.model->cost_model().Total(rel::RecostPlan(**vplan, *w.model));

    // --- EXODUS -------------------------------------------------------------
    Timer t2;
    exodus::ExodusOptimizer ex(*w.model);
    StatusOr<PlanPtr> eplan = ex.Optimize(*w.query, w.required);
    double ems = t2.ElapsedMillis();

    out.volcano_opt_ms += vms;
    out.volcano_exec_s += vexec;
    out.volcano_mexprs += static_cast<double>(volcano.stats().mexprs_created);

    if (!eplan.ok()) {
      ++out.exodus_aborts;
      continue;
    }
    double eexec =
        w.model->cost_model().Total(rel::RecostPlan(**eplan, *w.model));
    out.exodus_opt_ms += ems;
    out.exodus_exec_s += eexec;
    out.exodus_nodes += static_cast<double>(ex.stats().mesh_nodes);
    ++out.completed;
  }

  out.volcano_opt_ms /= out.queries;
  out.volcano_exec_s /= out.queries;
  out.volcano_mexprs /= out.queries;
  if (out.completed > 0) {
    out.exodus_opt_ms /= out.completed;
    out.exodus_exec_s /= out.completed;
    out.exodus_nodes /= out.completed;
  }
  return out;
}

}  // namespace
}  // namespace volcano

int main(int argc, char** argv) {
  int queries = 50;
  int max_relations = 8;
  if (argc > 1) queries = std::atoi(argv[1]);
  if (argc > 2) max_relations = std::atoi(argv[2]);

  std::printf(
      "Figure 4: Exhaustive Optimization Performance "
      "(%d queries per level, aborted EXODUS runs excluded)\n\n",
      queries);
  std::printf(
      "%4s | %14s %14s %7s | %13s %13s %7s | %10s %12s %7s\n", "rels",
      "volcano-opt-ms", "exodus-opt-ms", "ratio", "volcano-exec-s",
      "exodus-exec-s", "ratio", "v-mexprs", "e-meshnodes", "aborts");
  std::printf(
      "-----+------------------------------------- +-------------------------"
      "------------+--------------------------------\n");

  for (int n = 2; n <= max_relations; ++n) {
    volcano::LevelResult r =
        volcano::RunLevel(n, queries, /*seed_base=*/1000u * n);
    std::printf(
        "%4d | %14.3f %14.3f %6.1fx | %13.4f %13.4f %6.2fx | %10.0f %12.0f "
        "%4d/%d\n",
        r.relations, r.volcano_opt_ms, r.exodus_opt_ms,
        r.volcano_opt_ms > 0 ? r.exodus_opt_ms / r.volcano_opt_ms : 0.0,
        r.volcano_exec_s, r.exodus_exec_s,
        r.volcano_exec_s > 0 ? r.exodus_exec_s / r.volcano_exec_s : 0.0,
        r.volcano_mexprs, r.exodus_nodes, r.exodus_aborts, r.queries);
  }
  std::printf(
      "\nShape checks vs the paper: volcano-opt-ms should be ~straight on a\n"
      "log axis (exponential in #relations); exodus/volcano optimization\n"
      "ratio should reach ~an order of magnitude for complex queries with a\n"
      "knee at 4 relations; exec-s should be equal for small queries and\n"
      "favour Volcano for complex ones.\n");
  return 0;
}
