// Search strategies over the same memo: classic explore-first vs the
// literal Figure 2 interleaved-moves formulation. "The internal structure
// for equivalence classes is sufficiently modular and extensible to support
// alternative search strategies" (paper, section 6) — this bench shows both
// strategies do the same logical work (identical class/expression counts,
// identical plan costs, asserted) at comparable time, differing only in
// scheduling.

#include <cstdio>
#include <cstdlib>
#include <cmath>

#include "relational/query_gen.h"
#include "search/optimizer.h"
#include "search/search_config.h"
#include "support/timer.h"

int main(int argc, char** argv) {
  using namespace volcano;
  int queries = argc > 1 ? std::atoi(argv[1]) : 25;
  int max_relations = argc > 2 ? std::atoi(argv[2]) : 8;

  std::printf(
      "Search strategies (avg optimization ms / FindBestPlan calls); plan "
      "costs asserted identical; %d queries/level\n\n",
      queries);
  std::printf(
      "rels | explore-first        interleaved\n"
      "-----+------------------------------------\n");

  for (int n = 2; n <= max_relations; ++n) {
    double ms[2] = {0, 0};
    double calls[2] = {0, 0};
    for (int q = 0; q < queries; ++q) {
      rel::WorkloadOptions wopts;
      wopts.num_relations = n;
      wopts.order_by_prob = 0.25;
      wopts.sorted_base_prob = 0.5;
      rel::Workload w = rel::GenerateWorkload(
          wopts, 6000u * n + static_cast<uint64_t>(q));
      double costs[2];
      for (int v = 0; v < 2; ++v) {
        SearchOptions opts;
        opts.strategy = v == 0 ? SearchOptions::Strategy::kExploreFirst
                               : SearchOptions::Strategy::kInterleaved;
        Timer t;
        Optimizer opt(*w.model, SearchConfig::FromOptions(opts).value());
        StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
        ms[v] += t.ElapsedMillis();
        if (!plan.ok()) {
          std::fprintf(stderr, "optimization failed\n");
          return 1;
        }
        calls[v] += static_cast<double>(opt.stats().find_best_plan_calls);
        costs[v] = w.model->cost_model().Total((*plan)->cost());
      }
      if (std::abs(costs[0] - costs[1]) > 1e-9 * costs[0]) {
        std::fprintf(stderr, "strategies diverged on seed %d\n", q);
        return 1;
      }
    }
    std::printf("%4d | %9.3f (%7.0f)  %9.3f (%7.0f)\n", n,
                ms[0] / queries, calls[0] / queries, ms[1] / queries,
                calls[1] / queries);
  }
  std::printf(
      "\nBoth strategies are exhaustive over the identical logical space;\n"
      "differences are pure scheduling overhead (the interleaved variant\n"
      "re-collects moves whenever a transformation fires).\n");
  return 0;
}
