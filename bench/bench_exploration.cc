// Logical search-space growth.
//
// The paper observes that Volcano's optimization cost curve "mirrors exactly
// the increase in the number of equivalent logical algebra expressions"
// (section 4.2, citing Ono & Lohman's join-enumeration complexity results).
// This bench measures classes and expressions for chain, star, and random
// acyclic join graphs and compares chains against the closed forms:
// classes(chain-n) = n + n(n-1)/2, root expressions(chain-n) = dp counts of
// cross-product-free bushy trees.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "relational/query_gen.h"
#include "search/optimizer.h"
#include "support/timer.h"

namespace volcano {
namespace {

size_t LiveRootExprs(const Optimizer& opt, GroupId root) {
  size_t n = 0;
  for (const MExpr* m : opt.memo().group(root).exprs()) {
    if (!m->dead()) ++n;
  }
  return n;
}

/// Number of bushy, cross-product-free join trees over a chain of n
/// relations whose *root* splits the chain: sum over split points of
/// T(l)*T(r)*2 is folded into T; the root class holds one expression per
/// (split, side order): E(n) = 2 * (n-1) partitions counted with commute =
/// sum_{k=1..n-1} 2 (expressions per split) ... measured against dp below.
double ChainRootExprs(int n) {
  // dp[k] = number of distinct *classes'* member expressions is not needed;
  // the root class contains JOIN(left-interval, right-interval) for each of
  // the n-1 splits, times 2 for commuted versions.
  return n >= 2 ? 2.0 * (n - 1) : 0.0;
}



}  // namespace
}  // namespace volcano

int main(int argc, char** argv) {
  using namespace volcano;
  int max_relations = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf(
      "Search-space growth (classes, expressions, optimization ms) by join "
      "graph shape\n\n");
  std::printf(
      "rels | chain: cls expr root(thy) ms | star:  cls expr ms | random: "
      "cls expr ms\n");
  std::printf(
      "-----+------------------------------+--------------------+-----------"
      "--------\n");

  for (int n = 2; n <= max_relations; ++n) {
    double cols[3][4] = {};
    const rel::WorkloadOptions::JoinGraph kShapes[] = {
        rel::WorkloadOptions::JoinGraph::kChain,
        rel::WorkloadOptions::JoinGraph::kStar,
        rel::WorkloadOptions::JoinGraph::kRandomTree};
    for (int s = 0; s < 3; ++s) {
      rel::WorkloadOptions wopts;
      wopts.num_relations = n;
      wopts.join_graph = kShapes[s];
      wopts.selections = false;
      rel::Workload w = rel::GenerateWorkload(wopts, 7000u + n);
      Timer t;
      Optimizer opt(*w.model);
      StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
      double ms = t.ElapsedMillis();
      if (!plan.ok()) {
        std::fprintf(stderr, "failed\n");
        return 1;
      }
      cols[s][0] = static_cast<double>(opt.memo().num_groups());
      cols[s][1] = static_cast<double>(opt.memo().num_exprs());
      cols[s][2] = static_cast<double>(
          LiveRootExprs(opt, opt.memo().Find(opt.AddQuery(*w.query))));
      cols[s][3] = ms;
    }
    std::printf(
        "%4d | %5.0f %5.0f %4.0f (%3.0f) %6.2f | %5.0f %5.0f %6.2f | %5.0f "
        "%5.0f %6.2f\n",
        n, cols[0][0], cols[0][1], cols[0][2], ChainRootExprs(n), cols[0][3],
        cols[1][0], cols[1][1], cols[1][3], cols[2][0], cols[2][1],
        cols[2][3]);
  }
  std::printf(
      "\nChains: classes = n + n(n-1)/2 (contiguous intervals), root class\n"
      "expressions = 2(n-1) (split point x commute) — '(thy)' column.\n"
      "Optimization time tracks expression counts: the paper's section 4.2\n"
      "observation.\n");
  return 0;
}
