// Ablation A: branch-and-bound pruning and memoization.
//
// Section 3 of the paper attributes the Volcano search engine's efficiency
// to dynamic programming (winner memoization), memoized failures, and
// branch-and-bound pruning with cost limits passed down ("tight upper
// bounds also speed their optimization"). This bench flips one mechanism at
// a time on the Figure 4 workload and reports optimization time and the
// machine-independent effort counters. Plan cost is asserted unchanged —
// these are pure accelerations.

#include <cstdio>
#include <cstdlib>
#include <cmath>

#include "relational/query_gen.h"
#include "search/optimizer.h"
#include "search/search_config.h"
#include "support/timer.h"

namespace volcano {
namespace {

struct Config {
  const char* name;
  SearchOptions options;
};

void RunLevel(int relations, int queries, const Config* configs,
              int num_configs) {
  std::vector<double> ms(num_configs, 0.0);
  std::vector<double> fbp(num_configs, 0.0);
  std::vector<double> cost(num_configs, 0.0);

  for (int q = 0; q < queries; ++q) {
    rel::WorkloadOptions wopts;
    wopts.num_relations = relations;
    wopts.sorted_base_prob = 0.5;
    wopts.order_by_prob = 0.25;
    rel::Workload w = rel::GenerateWorkload(
        wopts, 2000u * relations + static_cast<uint64_t>(q));
    for (int c = 0; c < num_configs; ++c) {
      Timer t;
      Optimizer opt(*w.model,
                    SearchConfig::FromOptions(configs[c].options).value());
      StatusOr<PlanPtr> plan = opt.Optimize(*w.query, w.required);
      ms[c] += t.ElapsedMillis();
      if (!plan.ok()) {
        std::fprintf(stderr, "config %s failed: %s\n", configs[c].name,
                     plan.status().ToString().c_str());
        std::exit(1);
      }
      fbp[c] += static_cast<double>(opt.stats().find_best_plan_calls);
      cost[c] += w.model->cost_model().Total((*plan)->cost());
    }
  }

  for (int c = 0; c < num_configs; ++c) {
    // All configurations must return equally good plans.
    if (std::abs(cost[c] - cost[0]) > 1e-6 * cost[0]) {
      std::fprintf(stderr, "plan quality diverged for %s\n", configs[c].name);
      std::exit(1);
    }
  }

  std::printf("%4d |", relations);
  for (int c = 0; c < num_configs; ++c) {
    std::printf(" %9.3f (%8.0f)", ms[c] / queries, fbp[c] / queries);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace volcano

int main(int argc, char** argv) {
  using volcano::Config;
  int queries = argc > 1 ? std::atoi(argv[1]) : 25;
  int max_relations = argc > 2 ? std::atoi(argv[2]) : 8;

  Config configs[4];
  configs[0].name = "full";
  configs[1].name = "no branch-and-bound";
  configs[1].options.branch_and_bound = false;
  configs[2].name = "no failure memo";
  configs[2].options.memoize_failures = false;
  configs[3].name = "no b&b, no failure memo";
  configs[3].options.branch_and_bound = false;
  configs[3].options.memoize_failures = false;

  std::printf(
      "Ablation A: pruning & memoization (avg optimization ms, FindBestPlan "
      "calls in parens; %d queries/level)\n\n",
      queries);
  std::printf("rels |");
  for (const Config& c : configs) std::printf(" %20s", c.name);
  std::printf("\n-----+-----------------------------------------------------"
              "--------------------------------\n");
  for (int n = 2; n <= max_relations; ++n) {
    volcano::RunLevel(n, queries, configs, 4);
  }
  std::printf(
      "\nAll configurations return plans of identical cost (asserted): the\n"
      "mechanisms are pure accelerations. Failure memoization pays on its\n"
      "own; branch-and-bound interacts with it — tight limits can fail a\n"
      "goal that is later re-optimized with a looser limit, so with full\n"
      "memoization its net effect on this workload is small (see\n"
      "EXPERIMENTS.md for the discussion).\n");
  return 0;
}
