// Extensibility: a complete object-oriented data model on the unmodified
// search engine.
//
// The paper's extensibility claim is that the engine is data model
// independent: "for query optimization in object-oriented systems, we plan
// on defining 'assembledness' of complex objects in memory as a physical
// property and using the assembly operator ... as the enforcer for this
// property" (section 4.1). The model lives in src/oodb/ and — unlike the
// relational model — is registered EXCLUSIVELY through the optimizer
// generator (src/oodb/oodb.model -> optgen -> generated registration;
// support functions in oodb_model.cc):
//
//   logical algebra   EXTENT(Class)            all objects of a class
//                     TRAVERSE(ref)(input)     follow a reference attribute
//   physical algebra  EXTENT_SCAN              sequential extent read
//                     NAIVE_TRAVERSE           pointer chasing (random I/O)
//                     CLUSTERED_TRAVERSE       requires assembled input
//   enforcer          ASSEMBLY                 delivers "assembled" objects
//   physical property assembledness (not a sort order!)
//
// The optimizer decides where assembly pays off; with expensive assembly it
// falls back to pointer chasing.
//
//   $ ./build/examples/extensibility_oodb

#include <cstdio>

#include "oodb/oodb_model.h"
#include "search/optimizer.h"

int main() {
  using namespace volcano;

  oodb::OodbModel model;
  model.AddClass("Employee", 20000, 96);
  model.AddClass("Department", 500, 96);
  model.AddClass("Floor", 40, 96);

  // The Open OODB-style path expression employee.department.floor:
  ExprPtr path1 = model.Traverse(model.Extent("Employee"), "department");
  ExprPtr path2 = model.Traverse(path1, "floor");

  std::printf(
      "A second data model (object algebra, 'assembledness' physical\n"
      "property, ASSEMBLY enforcer), generated from src/oodb/oodb.model and\n"
      "running on the unmodified search engine.\n\n");

  {
    Optimizer opt(model);
    StatusOr<PlanPtr> plan = opt.Optimize(*path1, nullptr);
    VOLCANO_CHECK(plan.ok());
    std::printf("single traversal employee.department:\n%s\n",
                PlanToString(**plan, model.registry(), model.cost_model())
                    .c_str());
  }
  {
    Optimizer opt(model);
    StatusOr<PlanPtr> plan = opt.Optimize(*path2, nullptr);
    VOLCANO_CHECK(plan.ok());
    std::printf("deep path employee.department.floor:\n%s\n",
                PlanToString(**plan, model.registry(), model.cost_model())
                    .c_str());
  }
  {
    // Make assembling objects very expensive: the optimizer abandons the
    // clustered strategy and chases pointers instead.
    oodb::OodbCostParams costly;
    costly.assembly_per_object = 1e-3;
    oodb::OodbModel expensive(costly);
    expensive.AddClass("Employee", 20000, 96);
    ExprPtr path = expensive.Traverse(expensive.Extent("Employee"),
                                      "department");
    Optimizer opt(expensive);
    StatusOr<PlanPtr> plan = opt.Optimize(*path, nullptr);
    VOLCANO_CHECK(plan.ok());
    std::printf("with expensive assembly (1 ms/object):\n%s\n",
                PlanToString(**plan, expensive.registry(),
                             expensive.cost_model())
                    .c_str());
  }
  std::printf(
      "The optimizer places the ASSEMBLY enforcer exactly where paying the\n"
      "assembly cost unlocks cheap clustered traversals — the paper's\n"
      "section 4.1 scenario — and skips it when it cannot pay off.\n");
  return 0;
}
