// SQL demo: the full pipeline — SQL text, parser, logical algebra, Volcano
// optimization, iterator execution — over a small employees database.
//
//   $ ./build/examples/sql_demo

#include <cstdio>

#include "exec/datagen.h"
#include "exec/plan_exec.h"
#include "relational/sql.h"
#include "search/optimizer.h"

int main() {
  using namespace volcano;

  rel::Catalog catalog;
  VOLCANO_CHECK(catalog.AddRelation("emp", 2000, 100, 3,
                                    {2000, 50, 8}).ok());
  VOLCANO_CHECK(catalog.AddRelation("dept", 50, 100, 2, {50, 8}).ok());
  // emp is stored clustered on its department column.
  VOLCANO_CHECK(catalog
                    .SetSortedOn(catalog.symbols().Lookup("emp"),
                                 {catalog.symbols().Lookup("emp.a1")})
                    .ok());
  rel::RelModel model(catalog);
  exec::Database db = exec::GenerateDatabase(catalog, /*seed=*/3);

  const char* queries[] = {
      "SELECT * FROM emp WHERE emp.a2 < 3",
      "SELECT * FROM emp, dept WHERE emp.a1 = dept.a0 ORDER BY emp.a1",
      "SELECT emp.a1, COUNT(*) FROM emp GROUP BY emp.a1 ORDER BY emp.a1",
      "SELECT emp.a0, dept.a1 FROM emp, dept WHERE emp.a1 = dept.a0 "
      "AND dept.a1 >= 4",
      "SELECT DISTINCT emp.a2 FROM emp ORDER BY emp.a2",
  };

  for (const char* sql : queries) {
    std::printf("SQL> %s\n", sql);
    StatusOr<rel::ParsedQuery> parsed =
        rel::ParseSql(sql, model, catalog.symbols());
    if (!parsed.ok()) {
      std::printf("  parse error: %s\n\n", parsed.status().ToString().c_str());
      continue;
    }
    std::printf("  algebra:  %s\n", model.ExprToString(*parsed->expr).c_str());

    Optimizer optimizer(model);
    StatusOr<PlanPtr> plan = optimizer.Optimize(*parsed->expr,
                                                parsed->required);
    if (!plan.ok()) {
      std::printf("  optimizer error: %s\n\n",
                  plan.status().ToString().c_str());
      continue;
    }
    std::printf("  plan:     %s\n",
                PlanToLine(**plan, model.registry()).c_str());
    std::printf("  cost:     %s\n",
                model.cost_model().ToString((*plan)->cost()).c_str());

    std::vector<exec::Row> rows = exec::ExecutePlan(**plan, model, db);
    std::printf("  rows:     %zu", rows.size());
    for (size_t i = 0; i < rows.size() && i < 3; ++i) {
      std::printf("%s [", i == 0 ? "   e.g." : "");
      for (size_t j = 0; j < rows[i].size(); ++j) {
        std::printf("%s%lld", j ? " " : "", (long long)rows[i][j]);
      }
      std::printf("]");
    }
    std::printf("\n\n");
  }
  return 0;
}
