// Quickstart: define a catalog, pose a select-join query, optimize it with
// the Volcano search engine, inspect the plan, and execute it on synthetic
// data with the iterator-model execution engine.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "exec/datagen.h"
#include "exec/plan_exec.h"
#include "relational/rel_model.h"
#include "search/optimizer.h"

int main() {
  using namespace volcano;

  // --- 1. Describe the database --------------------------------------------
  rel::Catalog catalog;
  VOLCANO_CHECK(catalog.AddRelation("customer", 5000, 100, 3).ok());
  VOLCANO_CHECK(catalog.AddRelation("orders", 7200, 100, 3).ok());
  VOLCANO_CHECK(catalog.AddRelation("lineitem", 6000, 100, 3).ok());

  Symbol c_key = catalog.symbols().Lookup("customer.a0");
  Symbol o_cust = catalog.symbols().Lookup("orders.a1");
  Symbol o_key = catalog.symbols().Lookup("orders.a0");
  Symbol l_order = catalog.symbols().Lookup("lineitem.a1");
  Symbol l_qty = catalog.symbols().Lookup("lineitem.a2");

  // orders is stored physically sorted on its key: FILE_SCAN will deliver
  // that order for free and the optimizer can exploit it.
  VOLCANO_CHECK(
      catalog.SetSortedOn(catalog.symbols().Lookup("orders"), {o_key}).ok());

  // --- 2. Build the data model (operators, rules, cost model) --------------
  rel::RelModel model(catalog);

  // --- 3. Pose a query -------------------------------------------------------
  // SELECT * FROM customer, orders, lineitem
  // WHERE customer.a0 = orders.a1 AND orders.a0 = lineitem.a1
  //   AND lineitem.a2 < 40   -- ~40% of the domain
  // ORDER BY orders.a0
  ExprPtr scan_li = model.Select(model.Get("lineitem"), l_qty,
                                 rel::CmpOp::kLess, 40, 0.4);
  ExprPtr join1 = model.Join(model.Get("customer"), model.Get("orders"),
                             c_key, o_cust);
  ExprPtr query = model.Join(join1, scan_li, o_key, l_order);
  PhysPropsPtr required = model.Sorted({o_key});

  std::printf("logical query:\n  %s\n", model.ExprToString(*query).c_str());
  std::printf("required properties: %s\n\n", required->ToString().c_str());

  // --- 4. Optimize ------------------------------------------------------------
  Optimizer optimizer(model);
  StatusOr<PlanPtr> plan = optimizer.Optimize(*query, required);
  if (!plan.ok()) {
    std::printf("optimization failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("optimal plan (cost = estimated [io, cpu] seconds):\n%s\n",
              PlanToString(**plan, model.registry(),
                           model.cost_model())
                  .c_str());
  std::printf("search effort:\n%s\n\n", optimizer.stats().ToString().c_str());

  // --- 5. Execute ------------------------------------------------------------
  exec::Database db = exec::GenerateDatabase(catalog, /*seed=*/42);
  std::vector<exec::Row> rows = exec::ExecutePlan(**plan, model, db);
  std::printf("executed plan: %zu result rows\n", rows.size());
  if (!rows.empty()) {
    std::printf("first row:");
    for (int64_t v : rows.front()) std::printf(" %lld", (long long)v);
    std::printf("\n");
  }
  return 0;
}
