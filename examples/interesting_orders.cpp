// Interesting orders and physical properties.
//
// Demonstrates the core of the paper's search-engine contribution: winners
// are kept per (equivalence class, physical property vector), enforcers
// compete with order-delivering algorithms, and the excluding physical
// property vector keeps merge-join from qualifying redundantly below a sort.
// The same class is optimized for several different requested orders and
// the chosen plans diverge accordingly.
//
//   $ ./build/examples/interesting_orders

#include <cstdio>

#include "relational/rel_model.h"
#include "search/optimizer.h"

int main() {
  using namespace volcano;

  rel::Catalog catalog;
  VOLCANO_CHECK(catalog.AddRelation("part", 4000, 100, 2).ok());
  VOLCANO_CHECK(catalog.AddRelation("supply", 6000, 100, 2).ok());
  Symbol p_key = catalog.symbols().Lookup("part.a0");
  Symbol p_size = catalog.symbols().Lookup("part.a1");
  Symbol s_part = catalog.symbols().Lookup("supply.a0");
  // Both files are stored sorted on the join key: merge join needs no sorts.
  VOLCANO_CHECK(
      catalog.SetSortedOn(catalog.symbols().Lookup("part"), {p_key}).ok());
  VOLCANO_CHECK(
      catalog.SetSortedOn(catalog.symbols().Lookup("supply"), {s_part}).ok());

  rel::RelModel model(catalog);
  ExprPtr query =
      model.Join(model.Get("part"), model.Get("supply"), p_key, s_part);

  Optimizer optimizer(model);
  GroupId root = optimizer.AddQuery(*query);

  struct Goal {
    const char* label;
    PhysPropsPtr props;
  };
  Goal goals[] = {
      {"no requirement        ", model.AnyProps()},
      {"ORDER BY part.a0      ", model.Sorted({p_key})},
      {"ORDER BY part.a1      ", model.Sorted({p_size})},
      {"ORDER BY part.a0,a1   ", model.Sorted({p_key, p_size})},
  };

  std::printf("query: %s\n\n", model.ExprToString(*query).c_str());
  for (const Goal& goal : goals) {
    StatusOr<PlanPtr> plan = optimizer.OptimizeGroup(root, goal.props);
    if (!plan.ok()) {
      std::printf("%s -> %s\n", goal.label,
                  plan.status().ToString().c_str());
      continue;
    }
    std::printf("%s -> cost %-22s  %s\n", goal.label,
                model.cost_model().ToString((*plan)->cost()).c_str(),
                PlanToLine(**plan, model.registry()).c_str());
  }

  std::printf(
      "\nNote how the requirement changes the plan: the key order comes\n"
      "free from the stored files (merge join, no sorts) and even the\n"
      "no-requirement goal profits; other orders are established by the\n"
      "SORT enforcer; and the excluding property vector guarantees no plan\n"
      "ever sorts the output of a merge join that already delivers the\n"
      "same order.\n");

  std::printf("\nmemo after all four goals (winners per property vector):\n%s",
              optimizer.memo().ToString().c_str());
  return 0;
}
