// Star-schema joins: Volcano versus the EXODUS-style baseline on the same
// query, with both plans executed to verify they compute the same result.
//
// A fact table joins three dimensions on the same foreign-key column — the
// hub pattern that makes interesting orders matter: once the fact table is
// sorted (or stored sorted) on the hub key, merge joins chain without
// re-sorting. The property-blind EXODUS baseline cannot see this.
//
//   $ ./build/examples/star_join

#include <cstdio>

#include "exec/datagen.h"
#include "exec/plan_exec.h"
#include "exodus/exodus_optimizer.h"
#include "relational/rel_plan_cost.h"
#include "search/optimizer.h"

int main() {
  using namespace volcano;

  rel::Catalog catalog;
  VOLCANO_CHECK(catalog.AddRelation("fact", 7200, 100, 4).ok());
  VOLCANO_CHECK(catalog.AddRelation("dim1", 1200, 100, 2).ok());
  VOLCANO_CHECK(catalog.AddRelation("dim2", 1500, 100, 2).ok());
  VOLCANO_CHECK(catalog.AddRelation("dim3", 2000, 100, 2).ok());

  Symbol hub = catalog.symbols().Lookup("fact.a0");
  Symbol k1 = catalog.symbols().Lookup("dim1.a0");
  Symbol k2 = catalog.symbols().Lookup("dim2.a0");
  Symbol k3 = catalog.symbols().Lookup("dim3.a0");
  // All files are stored in key order (the usual primary-key layout): the
  // merge-join chain needs no sorts at all, but only a property-aware
  // optimizer can know that.
  VOLCANO_CHECK(
      catalog.SetSortedOn(catalog.symbols().Lookup("fact"), {hub}).ok());
  VOLCANO_CHECK(
      catalog.SetSortedOn(catalog.symbols().Lookup("dim1"), {k1}).ok());
  VOLCANO_CHECK(
      catalog.SetSortedOn(catalog.symbols().Lookup("dim2"), {k2}).ok());
  VOLCANO_CHECK(
      catalog.SetSortedOn(catalog.symbols().Lookup("dim3"), {k3}).ok());

  rel::RelModel model(catalog);

  // fact JOIN dim1 JOIN dim2 JOIN dim3, all on fact.a0, ORDER BY fact.a0.
  ExprPtr q = model.Get("fact");
  q = model.Join(std::move(q), model.Get("dim1"), hub, k1);
  q = model.Join(std::move(q), model.Get("dim2"), hub, k2);
  q = model.Join(std::move(q), model.Get("dim3"), hub, k3);
  PhysPropsPtr required = model.Sorted({hub});

  std::printf("query: %s\nrequired: %s\n\n",
              model.ExprToString(*q).c_str(), required->ToString().c_str());

  Optimizer volcano(model);
  StatusOr<PlanPtr> vplan = volcano.Optimize(*q, required);
  VOLCANO_CHECK(vplan.ok());
  exodus::ExodusOptimizer exodus(model);
  StatusOr<PlanPtr> eplan = exodus.Optimize(*q, required);
  VOLCANO_CHECK(eplan.ok());

  double vcost = model.cost_model().Total(rel::RecostPlan(**vplan, model));
  double ecost = model.cost_model().Total(rel::RecostPlan(**eplan, model));

  std::printf("Volcano plan (estimated %.3f s):\n%s\n", vcost,
              PlanToString(**vplan, model.registry(), model.cost_model())
                  .c_str());
  std::printf("EXODUS-style plan (estimated %.3f s, %.2fx):\n%s\n", ecost,
              ecost / vcost,
              PlanToString(**eplan, model.registry(), model.cost_model())
                  .c_str());

  // Execute both plans and confirm they agree.
  exec::Database db = exec::GenerateDatabase(catalog, /*seed=*/7);
  std::vector<exec::Row> vrows = exec::ExecutePlan(**vplan, model, db);
  std::vector<exec::Row> erows = exec::ExecutePlan(**eplan, model, db);
  exec::Schema vschema = exec::PlanSchema(**vplan, model, db);
  exec::Schema eschema = exec::PlanSchema(**eplan, model, db);
  bool same = exec::SameMultiset(
      exec::ReorderToSchema(erows, eschema, vschema), vrows);
  std::printf("executed both plans: %zu rows each, results %s\n",
              vrows.size(), same ? "IDENTICAL" : "DIFFER (bug!)");
  return same ? 0 : 1;
}
