// The generator paradigm, end to end (paper, Figure 1).
//
// Parses a model specification, generates optimizer C++ source code, and
// shows how the committed relational model uses exactly this output: the
// registry built by the generated code drives a real optimization.
//
//   $ ./build/examples/generator_demo

#include <cstdio>

#include "gen/codegen.h"
#include "gen/parser.h"
#include "relational/generated/gen_rel_model.h"
#include "search/optimizer.h"

static const char kSpec[] = R"(
// A small algebra for demonstration.
model demo;

operator GET 0;
operator JOIN 2;

algorithm SCAN 0;
algorithm NESTED_LOOPS 2;

enforcer SORT;

transformation commute: JOIN(?a, ?b) -> JOIN(?b, ?a) apply CommuteApply;

implementation get_scan: GET -> SCAN
  applicability ScanApplicability cost ScanCost;
implementation join_nl: JOIN(?a, ?b) -> NESTED_LOOPS
  applicability NlApplicability cost NlCost;

enforcer_rule sort: SORT enforce SortEnforce cost SortCost;
)";

int main() {
  using namespace volcano;

  // --- 1. model specification -> optimizer source code ----------------------
  StatusOr<gen::ModelSpec> spec = gen::ParseModelSpec(kSpec);
  if (!spec.ok()) {
    std::printf("parse error: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed model '%s': %zu operators, %zu transformations, "
              "%zu implementations, %zu enforcer rules\n\n",
              spec->model_name.c_str(), spec->operators.size(),
              spec->transformations.size(), spec->implementations.size(),
              spec->enforcers.size());

  StatusOr<gen::GeneratedCode> code = gen::GenerateOptimizerCode(*spec);
  VOLCANO_CHECK(code.ok());
  std::printf("generated %s (%zu bytes) and %s (%zu bytes)\n",
              code->header_name.c_str(), code->header.size(),
              code->source_name.c_str(), code->source.size());
  std::printf("--- %s (excerpt) ---\n%.*s...\n\n", code->header_name.c_str(),
              1100, code->header.c_str());

  // --- 2. the same pipeline, applied to the committed relational model ------
  // src/relational/relational.model was run through optgen; the output is
  // committed under src/relational/generated/ and linked into this binary.
  rel::Catalog catalog;
  VOLCANO_CHECK(catalog.AddRelation("emp", 3000, 100, 2).ok());
  VOLCANO_CHECK(catalog.AddRelation("dept", 500, 100, 2).ok());
  rel::GenRelModel model(catalog);

  Symbol e_dept = catalog.symbols().Lookup("emp.a1");
  Symbol d_key = catalog.symbols().Lookup("dept.a0");
  ExprPtr query = model.inner().Join(model.inner().Get("emp"),
                                     model.inner().Get("dept"), e_dept,
                                     d_key);

  Optimizer optimizer(model);  // driven by the GENERATED rule tables
  StatusOr<PlanPtr> plan = optimizer.Optimize(*query, nullptr);
  VOLCANO_CHECK(plan.ok());
  std::printf("optimizer built from generated code produced:\n%s",
              PlanToString(**plan, model.registry(), model.cost_model())
                  .c_str());
  std::printf(
      "\n(tests assert this optimizer's plans are byte-identical to the\n"
      "handwritten model's plans; regenerate with:\n"
      "  ./build/src/gen/optgen src/relational/relational.model \\\n"
      "      src/relational/generated relational/generated/)\n");
  return 0;
}
