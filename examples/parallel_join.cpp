// Parallelism via physical properties: partitioning is the second component
// of the property vector, Volcano's EXCHANGE operator is its enforcer, and a
// partitioned hash join requires "compatible partitioning rules" on both
// inputs (paper sections 3 and 4.1). The optimizer decides where going
// parallel pays for the repartitioning.
//
//   $ ./build/examples/parallel_join

#include <cstdio>

#include "relational/rel_model.h"
#include "search/optimizer.h"

int main() {
  using namespace volcano;

  rel::Catalog catalog;
  VOLCANO_CHECK(catalog.AddRelation("big1", 500000, 100, 2).ok());
  VOLCANO_CHECK(catalog.AddRelation("big2", 400000, 100, 2).ok());
  VOLCANO_CHECK(catalog.AddRelation("tiny", 800, 100, 2).ok());
  Symbol b1 = catalog.symbols().Lookup("big1.a0");
  Symbol b2 = catalog.symbols().Lookup("big2.a0");
  Symbol b2k = catalog.symbols().Lookup("big2.a1");
  Symbol tk = catalog.symbols().Lookup("tiny.a0");

  for (int ways : {1, 4, 16}) {
    rel::RelModelOptions opts;
    opts.enable_parallelism = ways > 1;
    opts.parallel_ways = ways;
    rel::RelModel model(catalog, opts);

    // (big1 ⋈ big2) ⋈ tiny, result gathered into one stream.
    ExprPtr q = model.Join(model.Get("big1"), model.Get("big2"), b1, b2);
    q = model.Join(std::move(q), model.Get("tiny"), b2k, tk);
    PhysPropsPtr required = ways > 1 ? model.Serial() : model.AnyProps();

    Optimizer opt(model);
    StatusOr<PlanPtr> plan = opt.Optimize(*q, required);
    VOLCANO_CHECK(plan.ok());
    std::printf("=== degree of parallelism: %d ===\n", ways);
    std::printf("%s\n",
                PlanToString(**plan, model.registry(), model.cost_model())
                    .c_str());
  }
  std::printf(
      "With parallelism enabled the optimizer inserts EXCHANGE operators\n"
      "exactly where repartitioning pays: both joins run partitioned, each\n"
      "input is shuffled once, and a final merge exchange gathers the serial\n"
      "result the query requires. No search-engine code knows what\n"
      "'partitioned' means — only the property vector ADT does.\n");
  return 0;
}
