file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_properties.dir/bench_ablation_properties.cc.o"
  "CMakeFiles/bench_ablation_properties.dir/bench_ablation_properties.cc.o.d"
  "bench_ablation_properties"
  "bench_ablation_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
