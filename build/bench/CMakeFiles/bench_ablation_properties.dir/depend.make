# Empty dependencies file for bench_ablation_properties.
# This may be replaced when dependencies are built.
