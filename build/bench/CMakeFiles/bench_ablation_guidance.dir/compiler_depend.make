# Empty compiler generated dependencies file for bench_ablation_guidance.
# This may be replaced when dependencies are built.
