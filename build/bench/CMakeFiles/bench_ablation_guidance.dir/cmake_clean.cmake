file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_guidance.dir/bench_ablation_guidance.cc.o"
  "CMakeFiles/bench_ablation_guidance.dir/bench_ablation_guidance.cc.o.d"
  "bench_ablation_guidance"
  "bench_ablation_guidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_guidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
