# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/end_to_end_test[1]_include.cmake")
include("/root/repo/build/tests/memo_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/rel_model_test[1]_include.cmake")
include("/root/repo/build/tests/query_gen_test[1]_include.cmake")
include("/root/repo/build/tests/exodus_test[1]_include.cmake")
include("/root/repo/build/tests/intersect_test[1]_include.cmake")
include("/root/repo/build/tests/multiway_join_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_union_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/pattern_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/uniqueness_test[1]_include.cmake")
include("/root/repo/build/tests/strategy_test[1]_include.cmake")
include("/root/repo/build/tests/plan_validate_test[1]_include.cmake")
include("/root/repo/build/tests/oodb_test[1]_include.cmake")
include("/root/repo/build/tests/left_deep_test[1]_include.cmake")
