# Empty compiler generated dependencies file for exodus_test.
# This may be replaced when dependencies are built.
