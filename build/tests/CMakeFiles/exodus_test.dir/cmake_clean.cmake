file(REMOVE_RECURSE
  "CMakeFiles/exodus_test.dir/exodus_test.cc.o"
  "CMakeFiles/exodus_test.dir/exodus_test.cc.o.d"
  "exodus_test"
  "exodus_test.pdb"
  "exodus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exodus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
