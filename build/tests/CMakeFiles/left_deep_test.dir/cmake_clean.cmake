file(REMOVE_RECURSE
  "CMakeFiles/left_deep_test.dir/left_deep_test.cc.o"
  "CMakeFiles/left_deep_test.dir/left_deep_test.cc.o.d"
  "left_deep_test"
  "left_deep_test.pdb"
  "left_deep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/left_deep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
