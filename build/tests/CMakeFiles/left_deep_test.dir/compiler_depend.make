# Empty compiler generated dependencies file for left_deep_test.
# This may be replaced when dependencies are built.
