# Empty compiler generated dependencies file for multiway_join_test.
# This may be replaced when dependencies are built.
