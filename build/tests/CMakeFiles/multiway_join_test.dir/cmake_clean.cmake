file(REMOVE_RECURSE
  "CMakeFiles/multiway_join_test.dir/multiway_join_test.cc.o"
  "CMakeFiles/multiway_join_test.dir/multiway_join_test.cc.o.d"
  "multiway_join_test"
  "multiway_join_test.pdb"
  "multiway_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiway_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
