# Empty dependencies file for aggregate_union_test.
# This may be replaced when dependencies are built.
