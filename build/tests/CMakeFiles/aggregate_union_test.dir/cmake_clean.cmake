file(REMOVE_RECURSE
  "CMakeFiles/aggregate_union_test.dir/aggregate_union_test.cc.o"
  "CMakeFiles/aggregate_union_test.dir/aggregate_union_test.cc.o.d"
  "aggregate_union_test"
  "aggregate_union_test.pdb"
  "aggregate_union_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_union_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
