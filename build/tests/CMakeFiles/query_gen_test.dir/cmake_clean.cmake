file(REMOVE_RECURSE
  "CMakeFiles/query_gen_test.dir/query_gen_test.cc.o"
  "CMakeFiles/query_gen_test.dir/query_gen_test.cc.o.d"
  "query_gen_test"
  "query_gen_test.pdb"
  "query_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
