# Empty compiler generated dependencies file for query_gen_test.
# This may be replaced when dependencies are built.
