# Empty dependencies file for intersect_test.
# This may be replaced when dependencies are built.
