file(REMOVE_RECURSE
  "CMakeFiles/intersect_test.dir/intersect_test.cc.o"
  "CMakeFiles/intersect_test.dir/intersect_test.cc.o.d"
  "intersect_test"
  "intersect_test.pdb"
  "intersect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intersect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
