# Empty dependencies file for rel_model_test.
# This may be replaced when dependencies are built.
