file(REMOVE_RECURSE
  "CMakeFiles/rel_model_test.dir/rel_model_test.cc.o"
  "CMakeFiles/rel_model_test.dir/rel_model_test.cc.o.d"
  "rel_model_test"
  "rel_model_test.pdb"
  "rel_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
