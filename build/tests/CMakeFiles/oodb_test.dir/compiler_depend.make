# Empty compiler generated dependencies file for oodb_test.
# This may be replaced when dependencies are built.
