file(REMOVE_RECURSE
  "CMakeFiles/oodb_test.dir/oodb_test.cc.o"
  "CMakeFiles/oodb_test.dir/oodb_test.cc.o.d"
  "oodb_test"
  "oodb_test.pdb"
  "oodb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
