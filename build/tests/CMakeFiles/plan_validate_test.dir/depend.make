# Empty dependencies file for plan_validate_test.
# This may be replaced when dependencies are built.
