file(REMOVE_RECURSE
  "CMakeFiles/plan_validate_test.dir/plan_validate_test.cc.o"
  "CMakeFiles/plan_validate_test.dir/plan_validate_test.cc.o.d"
  "plan_validate_test"
  "plan_validate_test.pdb"
  "plan_validate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_validate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
