file(REMOVE_RECURSE
  "CMakeFiles/parallel_join.dir/parallel_join.cpp.o"
  "CMakeFiles/parallel_join.dir/parallel_join.cpp.o.d"
  "parallel_join"
  "parallel_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
