
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/parallel_join.cpp" "examples/CMakeFiles/parallel_join.dir/parallel_join.cpp.o" "gcc" "examples/CMakeFiles/parallel_join.dir/parallel_join.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/volcano_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/exodus/CMakeFiles/volcano_exodus.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/volcano_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/oodb/CMakeFiles/volcano_oodb.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/volcano_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/volcano_search.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/volcano_rules.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
