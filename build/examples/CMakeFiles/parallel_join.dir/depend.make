# Empty dependencies file for parallel_join.
# This may be replaced when dependencies are built.
