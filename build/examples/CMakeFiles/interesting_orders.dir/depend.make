# Empty dependencies file for interesting_orders.
# This may be replaced when dependencies are built.
