file(REMOVE_RECURSE
  "CMakeFiles/interesting_orders.dir/interesting_orders.cpp.o"
  "CMakeFiles/interesting_orders.dir/interesting_orders.cpp.o.d"
  "interesting_orders"
  "interesting_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interesting_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
