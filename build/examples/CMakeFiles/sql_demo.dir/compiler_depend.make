# Empty compiler generated dependencies file for sql_demo.
# This may be replaced when dependencies are built.
