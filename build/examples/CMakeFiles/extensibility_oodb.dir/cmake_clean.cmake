file(REMOVE_RECURSE
  "CMakeFiles/extensibility_oodb.dir/extensibility_oodb.cpp.o"
  "CMakeFiles/extensibility_oodb.dir/extensibility_oodb.cpp.o.d"
  "extensibility_oodb"
  "extensibility_oodb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensibility_oodb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
