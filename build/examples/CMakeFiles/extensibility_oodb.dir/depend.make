# Empty dependencies file for extensibility_oodb.
# This may be replaced when dependencies are built.
