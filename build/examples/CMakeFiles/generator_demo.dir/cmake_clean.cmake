file(REMOVE_RECURSE
  "CMakeFiles/generator_demo.dir/generator_demo.cpp.o"
  "CMakeFiles/generator_demo.dir/generator_demo.cpp.o.d"
  "generator_demo"
  "generator_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generator_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
