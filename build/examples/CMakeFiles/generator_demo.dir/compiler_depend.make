# Empty compiler generated dependencies file for generator_demo.
# This may be replaced when dependencies are built.
