file(REMOVE_RECURSE
  "CMakeFiles/star_join.dir/star_join.cpp.o"
  "CMakeFiles/star_join.dir/star_join.cpp.o.d"
  "star_join"
  "star_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
