# Empty compiler generated dependencies file for star_join.
# This may be replaced when dependencies are built.
