file(REMOVE_RECURSE
  "CMakeFiles/vopt.dir/vopt.cc.o"
  "CMakeFiles/vopt.dir/vopt.cc.o.d"
  "vopt"
  "vopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
