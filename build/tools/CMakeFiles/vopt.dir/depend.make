# Empty dependencies file for vopt.
# This may be replaced when dependencies are built.
