# Empty dependencies file for optgen.
# This may be replaced when dependencies are built.
