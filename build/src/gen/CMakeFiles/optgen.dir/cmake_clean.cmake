file(REMOVE_RECURSE
  "CMakeFiles/optgen.dir/optgen_main.cc.o"
  "CMakeFiles/optgen.dir/optgen_main.cc.o.d"
  "optgen"
  "optgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
