file(REMOVE_RECURSE
  "CMakeFiles/volcano_gen.dir/codegen.cc.o"
  "CMakeFiles/volcano_gen.dir/codegen.cc.o.d"
  "CMakeFiles/volcano_gen.dir/parser.cc.o"
  "CMakeFiles/volcano_gen.dir/parser.cc.o.d"
  "libvolcano_gen.a"
  "libvolcano_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volcano_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
