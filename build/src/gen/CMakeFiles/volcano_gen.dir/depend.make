# Empty dependencies file for volcano_gen.
# This may be replaced when dependencies are built.
