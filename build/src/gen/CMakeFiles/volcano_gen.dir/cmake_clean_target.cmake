file(REMOVE_RECURSE
  "libvolcano_gen.a"
)
