file(REMOVE_RECURSE
  "CMakeFiles/volcano_rules.dir/rule.cc.o"
  "CMakeFiles/volcano_rules.dir/rule.cc.o.d"
  "libvolcano_rules.a"
  "libvolcano_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volcano_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
