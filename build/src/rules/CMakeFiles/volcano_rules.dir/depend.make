# Empty dependencies file for volcano_rules.
# This may be replaced when dependencies are built.
