file(REMOVE_RECURSE
  "libvolcano_rules.a"
)
