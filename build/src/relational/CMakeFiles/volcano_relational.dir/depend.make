# Empty dependencies file for volcano_relational.
# This may be replaced when dependencies are built.
