file(REMOVE_RECURSE
  "CMakeFiles/volcano_relational.dir/catalog.cc.o"
  "CMakeFiles/volcano_relational.dir/catalog.cc.o.d"
  "CMakeFiles/volcano_relational.dir/generated/gen_rel_model.cc.o"
  "CMakeFiles/volcano_relational.dir/generated/gen_rel_model.cc.o.d"
  "CMakeFiles/volcano_relational.dir/generated/relational_gen.cc.o"
  "CMakeFiles/volcano_relational.dir/generated/relational_gen.cc.o.d"
  "CMakeFiles/volcano_relational.dir/query_gen.cc.o"
  "CMakeFiles/volcano_relational.dir/query_gen.cc.o.d"
  "CMakeFiles/volcano_relational.dir/rel_model.cc.o"
  "CMakeFiles/volcano_relational.dir/rel_model.cc.o.d"
  "CMakeFiles/volcano_relational.dir/rel_plan_cost.cc.o"
  "CMakeFiles/volcano_relational.dir/rel_plan_cost.cc.o.d"
  "CMakeFiles/volcano_relational.dir/rel_rules.cc.o"
  "CMakeFiles/volcano_relational.dir/rel_rules.cc.o.d"
  "CMakeFiles/volcano_relational.dir/sql.cc.o"
  "CMakeFiles/volcano_relational.dir/sql.cc.o.d"
  "libvolcano_relational.a"
  "libvolcano_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volcano_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
