file(REMOVE_RECURSE
  "libvolcano_relational.a"
)
