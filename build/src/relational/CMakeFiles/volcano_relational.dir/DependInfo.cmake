
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/catalog.cc" "src/relational/CMakeFiles/volcano_relational.dir/catalog.cc.o" "gcc" "src/relational/CMakeFiles/volcano_relational.dir/catalog.cc.o.d"
  "/root/repo/src/relational/generated/gen_rel_model.cc" "src/relational/CMakeFiles/volcano_relational.dir/generated/gen_rel_model.cc.o" "gcc" "src/relational/CMakeFiles/volcano_relational.dir/generated/gen_rel_model.cc.o.d"
  "/root/repo/src/relational/generated/relational_gen.cc" "src/relational/CMakeFiles/volcano_relational.dir/generated/relational_gen.cc.o" "gcc" "src/relational/CMakeFiles/volcano_relational.dir/generated/relational_gen.cc.o.d"
  "/root/repo/src/relational/query_gen.cc" "src/relational/CMakeFiles/volcano_relational.dir/query_gen.cc.o" "gcc" "src/relational/CMakeFiles/volcano_relational.dir/query_gen.cc.o.d"
  "/root/repo/src/relational/rel_model.cc" "src/relational/CMakeFiles/volcano_relational.dir/rel_model.cc.o" "gcc" "src/relational/CMakeFiles/volcano_relational.dir/rel_model.cc.o.d"
  "/root/repo/src/relational/rel_plan_cost.cc" "src/relational/CMakeFiles/volcano_relational.dir/rel_plan_cost.cc.o" "gcc" "src/relational/CMakeFiles/volcano_relational.dir/rel_plan_cost.cc.o.d"
  "/root/repo/src/relational/rel_rules.cc" "src/relational/CMakeFiles/volcano_relational.dir/rel_rules.cc.o" "gcc" "src/relational/CMakeFiles/volcano_relational.dir/rel_rules.cc.o.d"
  "/root/repo/src/relational/sql.cc" "src/relational/CMakeFiles/volcano_relational.dir/sql.cc.o" "gcc" "src/relational/CMakeFiles/volcano_relational.dir/sql.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/search/CMakeFiles/volcano_search.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/volcano_rules.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
