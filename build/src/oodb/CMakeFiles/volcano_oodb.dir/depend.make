# Empty dependencies file for volcano_oodb.
# This may be replaced when dependencies are built.
