file(REMOVE_RECURSE
  "CMakeFiles/volcano_oodb.dir/generated/oodb_gen.cc.o"
  "CMakeFiles/volcano_oodb.dir/generated/oodb_gen.cc.o.d"
  "CMakeFiles/volcano_oodb.dir/oodb_model.cc.o"
  "CMakeFiles/volcano_oodb.dir/oodb_model.cc.o.d"
  "libvolcano_oodb.a"
  "libvolcano_oodb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volcano_oodb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
