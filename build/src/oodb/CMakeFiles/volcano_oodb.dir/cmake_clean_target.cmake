file(REMOVE_RECURSE
  "libvolcano_oodb.a"
)
