
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oodb/generated/oodb_gen.cc" "src/oodb/CMakeFiles/volcano_oodb.dir/generated/oodb_gen.cc.o" "gcc" "src/oodb/CMakeFiles/volcano_oodb.dir/generated/oodb_gen.cc.o.d"
  "/root/repo/src/oodb/oodb_model.cc" "src/oodb/CMakeFiles/volcano_oodb.dir/oodb_model.cc.o" "gcc" "src/oodb/CMakeFiles/volcano_oodb.dir/oodb_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/search/CMakeFiles/volcano_search.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/volcano_rules.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
