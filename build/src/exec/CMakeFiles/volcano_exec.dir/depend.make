# Empty dependencies file for volcano_exec.
# This may be replaced when dependencies are built.
