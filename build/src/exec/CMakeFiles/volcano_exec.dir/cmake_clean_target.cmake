file(REMOVE_RECURSE
  "libvolcano_exec.a"
)
