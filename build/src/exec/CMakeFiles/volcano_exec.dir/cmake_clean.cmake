file(REMOVE_RECURSE
  "CMakeFiles/volcano_exec.dir/datagen.cc.o"
  "CMakeFiles/volcano_exec.dir/datagen.cc.o.d"
  "CMakeFiles/volcano_exec.dir/iterators.cc.o"
  "CMakeFiles/volcano_exec.dir/iterators.cc.o.d"
  "CMakeFiles/volcano_exec.dir/plan_exec.cc.o"
  "CMakeFiles/volcano_exec.dir/plan_exec.cc.o.d"
  "libvolcano_exec.a"
  "libvolcano_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volcano_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
