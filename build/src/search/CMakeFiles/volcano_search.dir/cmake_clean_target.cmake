file(REMOVE_RECURSE
  "libvolcano_search.a"
)
