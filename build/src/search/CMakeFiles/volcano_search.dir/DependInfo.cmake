
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/dot.cc" "src/search/CMakeFiles/volcano_search.dir/dot.cc.o" "gcc" "src/search/CMakeFiles/volcano_search.dir/dot.cc.o.d"
  "/root/repo/src/search/memo.cc" "src/search/CMakeFiles/volcano_search.dir/memo.cc.o" "gcc" "src/search/CMakeFiles/volcano_search.dir/memo.cc.o.d"
  "/root/repo/src/search/optimizer.cc" "src/search/CMakeFiles/volcano_search.dir/optimizer.cc.o" "gcc" "src/search/CMakeFiles/volcano_search.dir/optimizer.cc.o.d"
  "/root/repo/src/search/plan.cc" "src/search/CMakeFiles/volcano_search.dir/plan.cc.o" "gcc" "src/search/CMakeFiles/volcano_search.dir/plan.cc.o.d"
  "/root/repo/src/search/search_options.cc" "src/search/CMakeFiles/volcano_search.dir/search_options.cc.o" "gcc" "src/search/CMakeFiles/volcano_search.dir/search_options.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rules/CMakeFiles/volcano_rules.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
