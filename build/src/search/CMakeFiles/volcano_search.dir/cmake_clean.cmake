file(REMOVE_RECURSE
  "CMakeFiles/volcano_search.dir/dot.cc.o"
  "CMakeFiles/volcano_search.dir/dot.cc.o.d"
  "CMakeFiles/volcano_search.dir/memo.cc.o"
  "CMakeFiles/volcano_search.dir/memo.cc.o.d"
  "CMakeFiles/volcano_search.dir/optimizer.cc.o"
  "CMakeFiles/volcano_search.dir/optimizer.cc.o.d"
  "CMakeFiles/volcano_search.dir/plan.cc.o"
  "CMakeFiles/volcano_search.dir/plan.cc.o.d"
  "CMakeFiles/volcano_search.dir/search_options.cc.o"
  "CMakeFiles/volcano_search.dir/search_options.cc.o.d"
  "libvolcano_search.a"
  "libvolcano_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volcano_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
