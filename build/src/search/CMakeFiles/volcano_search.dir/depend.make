# Empty dependencies file for volcano_search.
# This may be replaced when dependencies are built.
