file(REMOVE_RECURSE
  "libvolcano_exodus.a"
)
