# Empty compiler generated dependencies file for volcano_exodus.
# This may be replaced when dependencies are built.
