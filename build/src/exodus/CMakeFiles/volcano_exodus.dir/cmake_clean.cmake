file(REMOVE_RECURSE
  "CMakeFiles/volcano_exodus.dir/exodus_optimizer.cc.o"
  "CMakeFiles/volcano_exodus.dir/exodus_optimizer.cc.o.d"
  "libvolcano_exodus.a"
  "libvolcano_exodus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volcano_exodus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
